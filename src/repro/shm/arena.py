"""Generic shared-memory arenas: the data plane of the persistent runtime.

Three escalating abstractions, all built on ``multiprocessing.shared_memory``:

:class:`ShmArena`
    A named dict of numpy arrays living in shared segments — the generic
    core extracted from the original graph-only store.  The creator owns
    the segments and must :meth:`unlink`; workers :meth:`attach` by spec
    and only :meth:`close` their mappings.  Both lifecycle methods are
    idempotent and safe under double-call and GC-after-unlink.
:class:`ParamStore`
    A fixed-layout parameter/optimizer-state channel.  The layout (array
    shapes, dtypes, offsets) is frozen from template state at creation;
    afterwards :meth:`publish`/:meth:`load` move weights as raw memcpys
    into one segment — no pickling of large arrays ever again.  This is
    what lets the persistent worker pool ship model weights to long-lived
    rank processes for the cost of a copy instead of a fork + pickle.
:class:`BatchArena`
    A slotted scratch region for shipping *variable-shaped* array bundles
    (sampled mini-batches) from worker processes back to a consumer.
    Slot ownership is sequenced externally (a free-slot queue); the arena
    just writes/reads array bundles at slot granularity and reports when
    a bundle does not fit (callers then fall back to queue pickling).
:class:`DeltaLog`
    An append-only log of small :class:`ShmArena` fragments — the
    transport for streaming graph deltas.  The parent appends fragments
    (each one immutable once published); workers attach lazily by
    comparing their local length against the published spec list.  Every
    fragment carries the full arena lifecycle guarantees, so the same
    leak checks that cover the base store cover deltas too.

Lifecycle contract (all classes)
--------------------------------
* The creating process owns the segments and must call :meth:`unlink`
  (or use the object as a context manager).
* Attached instances only drop their local mappings on :meth:`close`.
* ``close``/``unlink`` are idempotent; ``unlink`` after ``close`` still
  retires the names; a second ``unlink`` and GC after either are no-ops.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Mapping

import numpy as np

__all__ = [
    "SharedArraySpec",
    "ShmArena",
    "ParamStore",
    "BatchArena",
    "DeltaLog",
    "TaskRing",
    "TransportStats",
    "attach_segment",
    "flatten_arrays",
    "unflatten_arrays",
]


@dataclass
class TransportStats:
    """Slot-hit vs pickle-fallback accounting for a :class:`BatchArena`.

    The one counter record every arena-backed transport shares — the
    prefetching loader's sampled-batch path and the serving runtime's
    prediction path both report through it, so CLI/bench reports can
    render "how often did results ride shared memory vs fall back to
    queue pickling" identically everywhere.
    """

    #: bundles that travelled through an arena slot (raw memcpy)
    arena_hits: int = 0
    #: bundles that fell back to queue pickling (oversized, no free slot,
    #: or the arena disabled outright)
    pickle_fallbacks: int = 0

    @property
    def total(self) -> int:
        return self.arena_hits + self.pickle_fallbacks

    @property
    def hit_rate(self) -> float:
        """Fraction of bundles served from arena slots (0.0 when idle)."""
        return self.arena_hits / self.total if self.total else 0.0


@dataclass(frozen=True)
class SharedArraySpec:
    """Picklable descriptor of one array living in a shared segment."""

    shm_name: str
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


def _view(shm: shared_memory.SharedMemory, spec: SharedArraySpec) -> np.ndarray:
    """Read-only numpy view over a shared segment (no copy)."""
    arr = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    arr.setflags(write=False)
    return arr


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without adopting ownership.

    Attaching re-registers the name with the resource tracker, which is
    harmless: the tracker daemon is shared across the process tree (its
    fd is inherited under both ``fork`` and ``spawn`` on POSIX) and
    registration is an idempotent set-add, so the creator's single
    ``unlink`` still retires the name exactly once.  Unregistering here
    instead would make the creator's later unlink double-unregister and
    spew ``KeyError`` noise from the tracker daemon.
    """
    return shared_memory.SharedMemory(name=name)


class _SharedSegments:
    """The one definition of the arena lifecycle contract.

    Idempotent ``close``/``unlink``, the owner-only unlink guard, the
    context-manager protocol and the GC safety net — shared by every
    arena class so the invariants (double-call safety, unlink-after-
    close, tolerance of externally reaped names) cannot drift between
    them.  Subclasses provide :meth:`_segment_handles` plus optional
    close/unlink hooks.
    """

    _UNLINK_ERROR = "only the creating process may unlink the segments"

    def _init_lifecycle(self, *, owner: bool) -> None:
        self._owner = owner
        self._closed = False
        self._unlinked = False

    def _segment_handles(self):
        """The ``SharedMemory`` objects this instance holds."""
        raise NotImplementedError

    def _on_close(self) -> None:
        """Hook: drop derived views before the mappings close."""

    def _on_unlink(self) -> None:
        """Hook: forget retired segment handles."""

    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def owner(self) -> bool:
        """Whether this instance created (and must unlink) the segments."""
        return self._owner

    def close(self) -> None:
        """Drop the local mappings (both roles); idempotent."""
        if self._closed:
            return
        self._closed = True
        self._on_close()
        for shm in list(self._segment_handles()):
            try:
                shm.close()
            except Exception:  # pragma: no cover - buffer already released
                pass

    def unlink(self) -> None:
        """Free the segments system-wide (owner only); implies :meth:`close`.

        Idempotent: a second call — or a call racing the GC safety net —
        is a no-op, and names already reaped externally are tolerated.
        """
        if not self._owner:
            raise RuntimeError(self._UNLINK_ERROR)
        if self._unlinked:
            return
        self._unlinked = True
        self.close()
        for shm in list(self._segment_handles()):
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass
        self._on_unlink()

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            if self._owner:
                self.unlink()
            else:
                self.close()
        except Exception:
            pass


class ShmArena(_SharedSegments):
    """A dict of numpy arrays backed by named shared-memory segments.

    Build with :meth:`create` in the owning process, ship ``spec`` (a
    small picklable dict) to workers and :meth:`attach` there.  Arrays
    are zero-copy read-only views in both roles.
    """

    _UNLINK_ERROR = "only the creating store may unlink segments"

    def __init__(
        self,
        segments: dict[str, shared_memory.SharedMemory],
        specs: dict[str, SharedArraySpec],
        *,
        owner: bool,
    ):
        self._segments = segments
        self._specs = specs
        self._init_lifecycle(owner=owner)
        self._arrays = {k: _view(shm, specs[k]) for k, shm in segments.items()}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, arrays: Mapping[str, np.ndarray]) -> "ShmArena":
        """Copy ``arrays`` into fresh shared segments (creator/owner role)."""
        segments: dict[str, shared_memory.SharedMemory] = {}
        specs: dict[str, SharedArraySpec] = {}
        try:
            for key, arr in arrays.items():
                arr = np.ascontiguousarray(arr)
                shm = shared_memory.SharedMemory(create=True, size=max(1, arr.nbytes))
                segments[key] = shm
                specs[key] = SharedArraySpec(shm.name, arr.shape, arr.dtype.str)
                dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
                dst[...] = arr
        except Exception:
            for shm in segments.values():
                shm.close()
                shm.unlink()
            raise
        return cls(segments, specs, owner=True)

    @classmethod
    def attach(cls, spec: dict[str, SharedArraySpec]) -> "ShmArena":
        """Map the segments described by a creator's :attr:`spec` (worker role)."""
        segments: dict[str, shared_memory.SharedMemory] = {}
        try:
            for key, aspec in spec.items():
                segments[key] = attach_segment(aspec.shm_name)
        except Exception:
            for shm in segments.values():
                shm.close()
            raise
        return cls(segments, dict(spec), owner=False)

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def spec(self) -> dict[str, SharedArraySpec]:
        """Picklable descriptor workers pass to :meth:`attach`."""
        return dict(self._specs)

    def array(self, key: str) -> np.ndarray:
        if self._closed:
            raise ValueError("store is closed")
        return self._arrays[key]

    @property
    def total_bytes(self) -> int:
        return sum(s.nbytes for s in self._specs.values())

    # ------------------------------------------------------------------
    # lifecycle (see _SharedSegments)
    # ------------------------------------------------------------------
    def _segment_handles(self):
        return self._segments.values()

    def _on_close(self) -> None:
        self._arrays.clear()

    def _on_unlink(self) -> None:
        self._segments = {}


class DeltaLog:
    """Append-only log of shared-memory fragments (streaming graph deltas).

    Each fragment is one immutable :class:`ShmArena` holding a small
    bundle of arrays.  The publishing side (the parent's graph store)
    :meth:`append`\\ s fragments as deltas arrive; attached stores in the
    persistent workers :meth:`sync` against the published spec list,
    mapping only the fragments they have not seen — fragments never
    change after publication, so index ``i`` always names the same
    arrays in every process.

    Lifecycle mirrors the base arena: the owner's :meth:`unlink` retires
    every owned fragment system-wide (idempotent per fragment via the
    arena layer); attached logs only :meth:`close` their mappings.  A log
    may mix roles — a store that attached fragments 0..k and later
    re-published is impossible by construction (owners never attach) —
    so :meth:`unlink` simply closes non-owned fragments.
    """

    def __init__(self) -> None:
        self._fragments: list[ShmArena] = []

    def __len__(self) -> int:
        return len(self._fragments)

    def arrays(self, index: int) -> dict[str, np.ndarray]:
        """Zero-copy read-only views of fragment ``index``'s arrays."""
        arena = self._fragments[index]
        return {key: arena.array(key) for key in arena.spec}

    @property
    def specs(self) -> list[dict[str, SharedArraySpec]]:
        """Picklable per-fragment specs, in append order."""
        return [arena.spec for arena in self._fragments]

    @property
    def total_bytes(self) -> int:
        return sum(arena.total_bytes for arena in self._fragments)

    # ------------------------------------------------------------------
    def append(self, arrays: Mapping[str, np.ndarray]) -> dict[str, SharedArraySpec]:
        """Publish one fragment (owner role); returns its spec."""
        arena = ShmArena.create(arrays)
        self._fragments.append(arena)
        return arena.spec

    def sync(self, specs: list[dict[str, SharedArraySpec]]) -> int:
        """Attach fragments published since the last sync (worker role).

        ``specs`` is the full published list; fragments ``0..len(self)``
        are assumed already mapped.  Returns how many new fragments were
        attached.  A shrinking spec list is a protocol violation.
        """
        if len(specs) < len(self._fragments):
            raise ValueError(
                f"delta log shrank: have {len(self._fragments)} fragments, "
                f"spec lists {len(specs)}"
            )
        new = 0
        for spec in specs[len(self._fragments) :]:
            self._fragments.append(ShmArena.attach(spec))
            new += 1
        return new

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop local mappings of every fragment; idempotent."""
        for arena in self._fragments:
            arena.close()

    def unlink(self) -> None:
        """Retire owned fragments system-wide, close attached ones."""
        for arena in self._fragments:
            if arena.owner:
                arena.unlink()
            else:
                arena.close()


# ----------------------------------------------------------------------
# nested-structure flattening (ParamStore's serialisation substrate)
# ----------------------------------------------------------------------


class _ArrayRef:
    """Placeholder marking where an extracted array sits in a skeleton."""

    __slots__ = ("index",)

    def __init__(self, index: int):
        self.index = index

    def __eq__(self, other):  # pragma: no cover - debugging aid
        return isinstance(other, _ArrayRef) and other.index == self.index


def flatten_arrays(obj) -> tuple[object, list[np.ndarray]]:
    """Split a nested dict/list/tuple into (skeleton, ordered arrays).

    ndarrays are replaced by :class:`_ArrayRef` placeholders in traversal
    order; everything else (scalars, strings) stays in the skeleton.  The
    skeleton pickles small — it is the shape of the structure, not its
    payload.
    """
    arrays: list[np.ndarray] = []

    def walk(node):
        if isinstance(node, np.ndarray):
            arrays.append(node)
            return _ArrayRef(len(arrays) - 1)
        if isinstance(node, dict):
            return type(node)((k, walk(v)) for k, v in node.items())
        if isinstance(node, (list, tuple)):
            return type(node)(walk(v) for v in node)
        return node

    return walk(obj), arrays


def unflatten_arrays(skeleton, arrays: list[np.ndarray]):
    """Inverse of :func:`flatten_arrays`."""

    def walk(node):
        if isinstance(node, _ArrayRef):
            return arrays[node.index]
        if isinstance(node, dict):
            return type(node)((k, walk(v)) for k, v in node.items())
        if isinstance(node, (list, tuple)):
            return type(node)(walk(v) for v in node)
        return node

    return walk(skeleton)


_ALIGN = 16  # array offsets inside a region are 16-byte aligned


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class _SlotLayout:
    """Where one array lives inside a region: (offset, shape, dtype str)."""

    offset: int
    shape: tuple[int, ...]
    dtype: str


class ParamStore(_SharedSegments):
    """Fixed-layout shared-memory channel for model + optimizer state.

    The layout is frozen from a *template* nested structure at
    :meth:`create` time (array count, shapes and dtypes may not change
    afterwards — a topology change means a new store).  Publishing then
    costs one memcpy per array plus a tiny pickled skeleton for the
    non-array remainder (optimizer step counters and the like), and
    loading costs the mirror-image copies out.

    One buffer serves both directions because the persistent-runtime
    protocol is strictly sequenced: the parent publishes before it sends
    an epoch command, workers read after receiving it; rank 0 publishes
    results before reporting, the parent reads after collecting every
    report.
    """

    _HEADER = 16  # int64 blob length + padding
    _UNLINK_ERROR = "only the creating process may unlink the param store"

    def __init__(self, shm, layouts, blob_offset, blob_bytes, *, owner: bool):
        self._shm = shm
        self._layouts: list[_SlotLayout] = layouts
        self._blob_offset = int(blob_offset)
        self._blob_bytes = int(blob_bytes)
        self._init_lifecycle(owner=owner)

    def _segment_handles(self):
        return (self._shm,)

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, template, *, blob_bytes: int = 1 << 20) -> "ParamStore":
        """Freeze a layout from ``template`` and allocate the segment."""
        skeleton, arrays = flatten_arrays(template)
        layouts: list[_SlotLayout] = []
        offset = cls._HEADER
        for arr in arrays:
            arr = np.asarray(arr)
            offset = _aligned(offset)
            layouts.append(_SlotLayout(offset, arr.shape, arr.dtype.str))
            offset += arr.nbytes
        blob_offset = _aligned(offset)
        size = blob_offset + int(blob_bytes)
        shm = shared_memory.SharedMemory(create=True, size=max(1, size))
        store = cls(shm, layouts, blob_offset, blob_bytes, owner=True)
        store.publish(template)
        return store

    @property
    def spec(self) -> dict:
        """Picklable descriptor workers pass to :meth:`attach`."""
        return {
            "shm_name": self._shm.name,
            "layouts": list(self._layouts),
            "blob_offset": self._blob_offset,
            "blob_bytes": self._blob_bytes,
        }

    @classmethod
    def attach(cls, spec: dict) -> "ParamStore":
        shm = attach_segment(spec["shm_name"])
        return cls(
            shm, list(spec["layouts"]), spec["blob_offset"], spec["blob_bytes"], owner=False
        )

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self._shm.size

    def publish(self, state) -> None:
        """Write a nested state structure into the shared buffer."""
        if self._closed:
            raise ValueError("param store is closed")
        skeleton, arrays = flatten_arrays(state)
        if len(arrays) != len(self._layouts):
            raise ValueError(
                f"state carries {len(arrays)} arrays, layout expects "
                f"{len(self._layouts)} (topology changed? create a new store)"
            )
        buf = self._shm.buf
        for arr, lay in zip(arrays, self._layouts):
            arr = np.ascontiguousarray(arr)
            if arr.shape != lay.shape or arr.dtype.str != lay.dtype:
                raise ValueError(
                    f"array {arr.shape}/{arr.dtype.str} does not match frozen "
                    f"layout {lay.shape}/{lay.dtype}"
                )
            dst = np.ndarray(lay.shape, dtype=np.dtype(lay.dtype), buffer=buf, offset=lay.offset)
            dst[...] = arr
        blob = pickle.dumps(skeleton)
        if len(blob) > self._blob_bytes:
            raise ValueError(
                f"state skeleton pickles to {len(blob)} bytes, blob region "
                f"holds {self._blob_bytes}"
            )
        np.ndarray((1,), dtype=np.int64, buffer=buf)[0] = len(blob)
        buf[self._blob_offset : self._blob_offset + len(blob)] = blob

    def load(self):
        """Read the last published state back out (arrays are copies)."""
        if self._closed:
            raise ValueError("param store is closed")
        buf = self._shm.buf
        arrays = [
            np.ndarray(
                lay.shape, dtype=np.dtype(lay.dtype), buffer=buf, offset=lay.offset
            ).copy()
            for lay in self._layouts
        ]
        (blob_len,) = np.ndarray((1,), dtype=np.int64, buffer=buf)
        blob = bytes(buf[self._blob_offset : self._blob_offset + int(blob_len)])
        return unflatten_arrays(pickle.loads(blob), arrays)


class BatchArena(_SharedSegments):
    """Slotted shared-memory scratch for variable-shaped array bundles.

    ``num_slots`` fixed-size slots in one segment.  A producer that holds
    a slot id writes a bundle with :meth:`write` and ships the returned
    layout (small and picklable) instead of the arrays; the consumer
    :meth:`read`\\ s the bundle out and recycles the slot id.  Slot
    ownership/sequencing is the caller's job — the natural fit is a
    free-slot queue bounded by the pipeline's lookahead.

    :meth:`write` returns ``None`` when the bundle does not fit a slot,
    so callers can fall back to ordinary queue pickling for outliers
    instead of failing the pipeline.
    """

    _UNLINK_ERROR = "only the creating process may unlink the batch arena"

    def __init__(self, shm, num_slots: int, slot_bytes: int, *, owner: bool):
        self._shm = shm
        self.num_slots = int(num_slots)
        self.slot_bytes = int(slot_bytes)
        self._init_lifecycle(owner=owner)

    def _segment_handles(self):
        return (self._shm,)

    @classmethod
    def create(cls, *, num_slots: int, slot_bytes: int) -> "BatchArena":
        if num_slots < 1 or slot_bytes < _ALIGN:
            raise ValueError(
                f"need >=1 slot of >={_ALIGN} bytes, got {num_slots} x {slot_bytes}"
            )
        shm = shared_memory.SharedMemory(create=True, size=num_slots * slot_bytes)
        return cls(shm, num_slots, slot_bytes, owner=True)

    @property
    def spec(self) -> dict:
        return {
            "shm_name": self._shm.name,
            "num_slots": self.num_slots,
            "slot_bytes": self.slot_bytes,
        }

    @classmethod
    def attach(cls, spec: dict) -> "BatchArena":
        shm = attach_segment(spec["shm_name"])
        return cls(shm, spec["num_slots"], spec["slot_bytes"], owner=False)

    # ------------------------------------------------------------------
    def write(self, slot: int, arrays) -> list[_SlotLayout] | None:
        """Pack ``arrays`` into ``slot``; ``None`` if they do not fit."""
        if self._closed:
            raise ValueError("batch arena is closed")
        if not 0 <= slot < self.num_slots:
            raise ValueError(f"slot {slot} out of range for {self.num_slots} slots")
        base = slot * self.slot_bytes
        offset = 0
        layouts: list[_SlotLayout] = []
        arrays = [np.ascontiguousarray(a) for a in arrays]
        for arr in arrays:
            offset = _aligned(offset)
            if offset + arr.nbytes > self.slot_bytes:
                return None
            layouts.append(_SlotLayout(offset, arr.shape, arr.dtype.str))
            offset += arr.nbytes
        buf = self._shm.buf
        for arr, lay in zip(arrays, layouts):
            dst = np.ndarray(
                lay.shape, dtype=np.dtype(lay.dtype), buffer=buf, offset=base + lay.offset
            )
            dst[...] = arr
        return layouts

    def read(self, slot: int, layouts) -> list[np.ndarray]:
        """Copy a bundle written by :meth:`write` back out."""
        if self._closed:
            raise ValueError("batch arena is closed")
        base = slot * self.slot_bytes
        buf = self._shm.buf
        return [
            np.ndarray(
                lay.shape, dtype=np.dtype(lay.dtype), buffer=buf, offset=base + lay.offset
            ).copy()
            for lay in layouts
        ]


class TaskRing(_SharedSegments):
    """Shared-memory segment table for work-stealing pool inference.

    One fixed-capacity segment the parent re-publishes per steal-mode
    micro-batch: the bin-concatenated request node ids (``order`` applied),
    the segment boundaries inside that order, each rank's contiguous
    segment range, and each bin's total cost (the steal-priority signal).
    Workers attach once by spec (the ring is created per pool launch,
    like the param store) and :meth:`load` a snapshot per InferPlan —
    publishing n ranks' assignment tables costs one memcpy instead of n
    pickled copies of the batch through the command queues.

    Claim coordination lives elsewhere
    (:class:`repro.distributed.comm.ClaimBoard`); the ring is pure data.
    The pool's ``collect_results`` barrier serialises batches, so a
    publish never races a worker read of the previous batch.
    """

    _UNLINK_ERROR = "only the creating process may unlink the task ring"
    _HEADER = 4  # int64 slots: num_requests, num_segments, num_ranks, unused

    def __init__(self, shm, node_capacity: int, rank_capacity: int, *, owner: bool):
        self._shm = shm
        self.node_capacity = int(node_capacity)
        # segments can never outnumber requests (grain >= 1 request)
        self.segment_capacity = int(node_capacity)
        self.rank_capacity = int(rank_capacity)
        self._init_lifecycle(owner=owner)

    def _segment_handles(self):
        return (self._shm,)

    # ------------------------------------------------------------------
    @classmethod
    def _layout_bytes(cls, node_capacity: int, rank_capacity: int) -> int:
        i8 = np.dtype(np.int64).itemsize
        return (
            cls._HEADER * i8
            + node_capacity * i8  # node ids (bin-concatenated order)
            + (node_capacity + 1) * i8  # segment splits
            + (rank_capacity + 1) * i8  # rank splits
            + rank_capacity * np.dtype(np.float64).itemsize  # bin weights
        )

    @classmethod
    def create(cls, *, node_capacity: int = 4096, rank_capacity: int = 64) -> "TaskRing":
        if node_capacity < 1 or rank_capacity < 1:
            raise ValueError(
                f"capacities must be >= 1, got {node_capacity} x {rank_capacity}"
            )
        size = cls._layout_bytes(node_capacity, rank_capacity)
        shm = shared_memory.SharedMemory(create=True, size=size)
        ring = cls(shm, node_capacity, rank_capacity, owner=True)
        ring._header()[:] = 0
        return ring

    @property
    def spec(self) -> dict:
        return {
            "shm_name": self._shm.name,
            "node_capacity": self.node_capacity,
            "rank_capacity": self.rank_capacity,
        }

    @classmethod
    def attach(cls, spec: dict) -> "TaskRing":
        shm = attach_segment(spec["shm_name"])
        return cls(shm, spec["node_capacity"], spec["rank_capacity"], owner=False)

    # ------------------------------------------------------------------
    def _views(self):
        i8 = np.dtype(np.int64).itemsize
        buf = self._shm.buf
        off = self._HEADER * i8
        nodes = np.ndarray((self.node_capacity,), dtype=np.int64, buffer=buf, offset=off)
        off += self.node_capacity * i8
        segs = np.ndarray((self.node_capacity + 1,), dtype=np.int64, buffer=buf, offset=off)
        off += (self.node_capacity + 1) * i8
        ranks = np.ndarray((self.rank_capacity + 1,), dtype=np.int64, buffer=buf, offset=off)
        off += (self.rank_capacity + 1) * i8
        weights = np.ndarray((self.rank_capacity,), dtype=np.float64, buffer=buf, offset=off)
        return nodes, segs, ranks, weights

    def _header(self) -> np.ndarray:
        return np.ndarray((self._HEADER,), dtype=np.int64, buffer=self._shm.buf)

    def fits(self, num_requests: int, num_ranks: int) -> bool:
        """Whether a batch's assignment table fits this ring."""
        return num_requests <= self.node_capacity and num_ranks <= self.rank_capacity

    def publish(
        self,
        node_ids: np.ndarray,
        seg_splits: np.ndarray,
        rank_splits: np.ndarray,
        bin_weights: np.ndarray,
    ) -> None:
        """Write one batch's assignment table (parent, between batches)."""
        if self._closed:
            raise ValueError("task ring is closed")
        node_ids = np.asarray(node_ids, dtype=np.int64)
        seg_splits = np.asarray(seg_splits, dtype=np.int64)
        rank_splits = np.asarray(rank_splits, dtype=np.int64)
        bin_weights = np.asarray(bin_weights, dtype=np.float64)
        num_ranks = len(rank_splits) - 1
        if not self.fits(len(node_ids), num_ranks):
            raise ValueError(
                f"batch of {len(node_ids)} requests / {num_ranks} ranks "
                f"exceeds ring capacity {self.node_capacity} x {self.rank_capacity}"
            )
        nodes, segs, ranks, weights = self._views()
        nodes[: len(node_ids)] = node_ids
        segs[: len(seg_splits)] = seg_splits
        ranks[: len(rank_splits)] = rank_splits
        weights[:num_ranks] = bin_weights
        header = self._header()
        header[0] = len(node_ids)
        header[1] = len(seg_splits) - 1
        header[2] = num_ranks

    def load(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Copy the published table out: ``(node_ids, seg_splits,
        rank_splits, bin_weights)`` (worker, under an in-flight plan)."""
        if self._closed:
            raise ValueError("task ring is closed")
        header = self._header()
        num_nodes, num_segments, num_ranks = int(header[0]), int(header[1]), int(header[2])
        nodes, segs, ranks, weights = self._views()
        return (
            nodes[:num_nodes].copy(),
            segs[: num_segments + 1].copy(),
            ranks[: num_ranks + 1].copy(),
            weights[:num_ranks].copy(),
        )
