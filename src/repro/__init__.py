"""repro — reproduction of ARGO (IPDPS 2024).

ARGO is a runtime system that makes mini-batch GNN training scale on
multi-core CPUs via multi-processing + core binding, with an online
Bayesian-optimization auto-tuner choosing the configuration.  This
package reimplements the complete system and every substrate it needs
(graphs, samplers, GNN models with autograd, DDP, the platform model and
the BayesOpt engine) in pure numpy — see DESIGN.md for the inventory and
EXPERIMENTS.md for the paper-vs-measured record.

Quick start::

    from repro import (
        load_dataset, make_task, ConfigSpace, ICE_LAKE_8380H, ARGO,
        MultiProcessEngine,
    )

    ds = load_dataset("ogbn-products", seed=0)
    sampler, model = make_task("neighbor-sage", ds.layer_dims(3), seed=0)
    engine = MultiProcessEngine(ds, sampler, model, num_processes=4)
    engine.train(num_epochs=5, eval_every=1)
"""

from repro.graph import load_dataset, list_datasets, DATASET_REGISTRY, CSRGraph
from repro.gnn import GCN, GraphSAGE, build_model
from repro.gnn.models import make_task, TASKS
from repro.sampling import NeighborSampler, ShadowSampler, NodeDataLoader, make_sampler
from repro.platform import (
    PlatformSpec,
    ICE_LAKE_8380H,
    SAPPHIRE_RAPIDS_6430L,
    PLATFORMS,
    LibraryProfile,
    DGL,
    PYG,
    LIBRARIES,
    CostModel,
    SimulatedRuntime,
    CoreBinder,
)
from repro.workload import WorkloadModel, measure_workload
from repro.exec import ExecutionBackend, available_backends, get_backend
from repro.pipeline import OrderedPrefetcher, PrefetchingLoader
from repro.tuning import (
    BackendSpace,
    ConfigSpace,
    ExhaustiveSearch,
    RandomSearch,
    SimulatedAnnealing,
    default_config,
)
from repro.bayesopt import BayesianOptimizer, GaussianProcessRegressor
from repro.core import (
    ARGO,
    RuntimeConfig,
    MultiProcessEngine,
    OnlineAutoTuner,
    make_train_fn,
    evaluate_accuracy,
)

__version__ = "1.0.0"

__all__ = [
    "load_dataset",
    "list_datasets",
    "DATASET_REGISTRY",
    "CSRGraph",
    "GCN",
    "GraphSAGE",
    "build_model",
    "make_task",
    "TASKS",
    "NeighborSampler",
    "ShadowSampler",
    "NodeDataLoader",
    "OrderedPrefetcher",
    "PrefetchingLoader",
    "make_sampler",
    "PlatformSpec",
    "ICE_LAKE_8380H",
    "SAPPHIRE_RAPIDS_6430L",
    "PLATFORMS",
    "LibraryProfile",
    "DGL",
    "PYG",
    "LIBRARIES",
    "CostModel",
    "SimulatedRuntime",
    "CoreBinder",
    "WorkloadModel",
    "measure_workload",
    "ExecutionBackend",
    "available_backends",
    "get_backend",
    "BackendSpace",
    "ConfigSpace",
    "ExhaustiveSearch",
    "RandomSearch",
    "SimulatedAnnealing",
    "default_config",
    "BayesianOptimizer",
    "GaussianProcessRegressor",
    "ARGO",
    "RuntimeConfig",
    "MultiProcessEngine",
    "OnlineAutoTuner",
    "make_train_fn",
    "evaluate_accuracy",
    "__version__",
]
