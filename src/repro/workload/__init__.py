"""Workload measurement: the sampled-edge / byte / FLOP accounting that
feeds the platform cost model.

The paper quantifies GNN training workload by the number of sampled edges
(Fig. 6: "the number of aggregations performed is proportional to the
number of edges") and shows it *grows* with the number of processes
because smaller per-process mini-batches share fewer neighbours (Fig. 5).
:func:`measure_workload` measures exactly that from the real samplers in
:mod:`repro.sampling`; :class:`WorkloadModel` interpolates measurements
across batch sizes and converts them to bytes/FLOPs for a model's layer
dimensions.
"""

from repro.workload.stats import (
    WorkloadSample,
    measure_workload,
    duplicate_aggregation_count,
)
from repro.workload.model import WorkloadModel

__all__ = [
    "WorkloadSample",
    "measure_workload",
    "duplicate_aggregation_count",
    "WorkloadModel",
]
