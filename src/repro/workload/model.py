"""Workload model: measured curves + byte/FLOP accounting.

A :class:`WorkloadModel` is built once per (dataset, sampler) pair by
measuring the real sampler at a geometric grid of batch sizes.  Two
prediction modes:

``powerlaw`` (default)
    Fit ``log E = a + alpha log b`` on the *small-batch* regime (where the
    local synthetic graph is far from saturated) and extrapolate.  The
    local stand-in graphs are orders of magnitude smaller than the
    paper's, so large batches saturate their node sets and flatten the
    measured curves; the power-law fit recovers the unsaturated scaling a
    paper-scale graph would show.  ``alpha < 1`` encodes shared-neighbour
    reuse, which is exactly the paper's Fig. 5/6 workload-inflation
    mechanism: total epoch edges ``n * iters * E(B/n) ~ n^(1-alpha)``
    grow with the process count.

``interp``
    Log-log interpolation of the raw measurements (used by tests and by
    studies of the saturated small-graph regime itself).

Byte and FLOP conversions follow the structure of the models in
:mod:`repro.gnn`:

* aggregation moves ``edges * f_in`` floats per layer (SpMM reads), plus
  the initial feature gather of ``input_nodes * f0``; irregular access
  wastes most of each cache line, modelled by ``GATHER_INEFFICIENCY``;
* feature update is a dense GEMM of ``rows x f_in' x f_out`` per layer
  (``f_in' = 2 f_in`` for GraphSAGE's concat);
* backward approximately doubles both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.datasets import GNNDataset
from repro.sampling.base import Sampler
from repro.workload.stats import WorkloadSample, measure_workload

__all__ = ["WorkloadModel"]

#: forward+backward traffic multiplier over forward-only traffic
_BACKWARD_FACTOR = 2.6
#: bytes per float32 element
_ELEM = 4.0
#: random-gather cache-line waste: each irregularly-accessed element drags
#: in neighbours it does not use
GATHER_INEFFICIENCY = 2.5


#: extrapolation exponent cap: per-iteration workload cannot grow
#: super-linearly in batch size at paper scale (neighbourhoods of distinct
#: seeds barely overlap on a 10^6-node graph, and sharing only *removes*
#: work).  Small dense measurement graphs can measure alpha > 1 for ShaDow
#: because seed neighbourhoods cross-connect; the cap removes the artefact.
ALPHA_CAP = 0.97


@dataclass
class _Curve:
    """y(batch) predictor in log-log space.

    ``alpha`` is the fitted power-law exponent (slope), clamped to
    ``[0, ALPHA_CAP]`` and re-anchored at the largest measured point so
    the unsaturated regime is reproduced exactly.  In ``interp`` mode
    predictions interpolate the raw points instead, but ``alpha`` is
    still reported for diagnostics.
    """

    log_b: np.ndarray
    log_y: np.ndarray
    mode: str
    intercept: float = 0.0
    alpha: float = 1.0

    def __post_init__(self):
        if len(self.log_b) >= 2:
            A = np.vstack([np.ones_like(self.log_b), self.log_b]).T
            coef, *_ = np.linalg.lstsq(A, self.log_y, rcond=None)
            self.alpha = float(np.clip(coef[1], 0.0, ALPHA_CAP))
            # anchor at the largest measured batch
            self.intercept = float(self.log_y[-1] - self.alpha * self.log_b[-1])
        else:
            self.intercept, self.alpha = float(self.log_y[0]), 0.0

    def __call__(self, batch: float) -> float:
        lx = np.log(max(float(batch), 1.0))
        if self.mode == "powerlaw":
            return float(np.exp(self.intercept + self.alpha * lx))
        return float(np.exp(np.interp(lx, self.log_b, self.log_y)))


def _grid(max_batch: int) -> list[int]:
    grid, b = [], 1
    while b < max_batch:
        grid.append(b)
        b *= 2
    grid.append(max_batch)
    return sorted(set(grid))


class WorkloadModel:
    """Measured workload curves for one (dataset, sampler) pair.

    Parameters
    ----------
    dataset, sampler:
        Measurement substrate (the local synthetic instance).
    mode:
        ``"powerlaw"`` (default) or ``"interp"`` — see module docstring.
    fit_max_batch:
        Largest batch size measured/fitted (kept small enough that the
        local graph is unsaturated; default 64).
    num_batches, seed:
        Measurement repetitions and determinism control.
    """

    def __init__(
        self,
        dataset: GNNDataset,
        sampler: Sampler,
        *,
        mode: str = "powerlaw",
        fit_max_batch: int = 64,
        num_batches: int = 4,
        seed: int = 0,
    ):
        if mode not in ("powerlaw", "interp"):
            raise ValueError(f"mode must be 'powerlaw' or 'interp', got {mode!r}")
        if fit_max_batch < 2:
            raise ValueError(f"fit_max_batch must be >= 2, got {fit_max_batch}")
        self.dataset = dataset
        self.sampler = sampler
        self.mode = mode
        self.fit_max_batch = int(fit_max_batch)
        self.samples: list[WorkloadSample] = [
            measure_workload(dataset, sampler, b, num_batches=num_batches, seed=seed)
            for b in _grid(self.fit_max_batch)
        ]
        self.num_layers = self.samples[0].num_layers
        log_b = np.log([s.batch_size for s in self.samples])

        def curve(vals) -> _Curve:
            return _Curve(log_b, np.log(np.maximum(vals, 1.0)), mode)

        self._edges = curve([s.edges_per_iter for s in self.samples])
        self._structure_edges = curve([s.structure_edges_per_iter for s in self.samples])
        self._inputs = curve([s.input_nodes_per_iter for s in self.samples])
        self._layer_edges = [
            curve([s.layer_edges[l] for s in self.samples]) for l in range(self.num_layers)
        ]
        self._layer_rows = [
            curve([s.layer_rows[l] for s in self.samples]) for l in range(self.num_layers)
        ]

    # ------------------------------------------------------------------
    # per-iteration workload curves
    # ------------------------------------------------------------------
    @property
    def alpha(self) -> float:
        """Fitted edge-count exponent (< 1 means shared-neighbour reuse)."""
        return self._edges.alpha

    def edges_per_iter(self, batch: float) -> float:
        """Mean aggregation edges in one iteration at the given batch size."""
        return self._edges(batch)

    def sampling_edges_per_iter(self, batch: float) -> float:
        """Edges the *sampler* must produce (distinct structures only)."""
        return self._structure_edges(batch)

    def input_nodes_per_iter(self, batch: float) -> float:
        return self._inputs(batch)

    def layer_edges_per_iter(self, batch: float) -> list[float]:
        return [c(batch) for c in self._layer_edges]

    def layer_rows_per_iter(self, batch: float) -> list[float]:
        return [c(batch) for c in self._layer_rows]

    # ------------------------------------------------------------------
    # epoch-level accounting (paper Fig. 6)
    # ------------------------------------------------------------------
    def epoch_edges(self, num_processes: int, global_batch: int, train_nodes: int) -> float:
        """Total aggregation edges in one epoch with ``n`` processes.

        Each process runs ``train_nodes / global_batch`` iterations at
        per-process batch ``global_batch / n``; shared-neighbour loss makes
        the total grow with ``n`` (Fig. 6's Workload curve).
        """
        if num_processes < 1:
            raise ValueError("num_processes must be >= 1")
        iters = max(1, int(np.ceil(train_nodes / global_batch)))
        per_proc_batch = global_batch / num_processes
        return num_processes * iters * self.edges_per_iter(per_proc_batch)

    # ------------------------------------------------------------------
    # byte / FLOP conversion for a concrete model
    # ------------------------------------------------------------------
    def _check_dims(self, dims: list[int]) -> None:
        if len(dims) != self.num_layers + 1:
            raise ValueError(
                f"dims length {len(dims)} must be num_layers+1={self.num_layers + 1}"
            )

    def flops_per_iter(self, batch: float, dims: list[int], model: str) -> float:
        """Dense feature-update FLOPs (fwd+bwd) for one iteration."""
        model = model.lower()
        self._check_dims(dims)
        rows = self.layer_rows_per_iter(batch)
        edges = self.layer_edges_per_iter(batch)
        total = 0.0
        for l in range(self.num_layers):
            f_in = dims[l] * (2 if model in ("sage", "graphsage") else 1)
            total += 2.0 * rows[l] * f_in * dims[l + 1]  # GEMM
            total += edges[l] * dims[l]  # aggregation adds
        return total * _BACKWARD_FACTOR

    def bytes_per_iter(self, batch: float, dims: list[int]) -> float:
        """DRAM traffic (fwd+bwd) for one iteration.

        The dominant irregular term is the feature gather + SpMM message
        reads (``aten::index_select`` in the paper's Fig. 2 trace),
        inflated by :data:`GATHER_INEFFICIENCY` for cache-line waste.
        """
        self._check_dims(dims)
        gather = self.input_nodes_per_iter(batch) * dims[0] * GATHER_INEFFICIENCY
        traffic = gather
        rows = self.layer_rows_per_iter(batch)
        edges = self.layer_edges_per_iter(batch)
        for l in range(self.num_layers):
            traffic += edges[l] * dims[l] * GATHER_INEFFICIENCY  # message reads
            traffic += rows[l] * dims[l + 1]  # output writes (streaming)
        return traffic * _ELEM * _BACKWARD_FACTOR
