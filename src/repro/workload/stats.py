"""Measured workload statistics from the real samplers."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.graph.datasets import GNNDataset
from repro.sampling.base import Sampler
from repro.utils.rng import derive_rng

__all__ = ["WorkloadSample", "measure_workload", "duplicate_aggregation_count"]


@dataclass(frozen=True)
class WorkloadSample:
    """Mean per-iteration workload at one batch size.

    ``layer_edges``/``layer_rows`` are in model order (input layer first):
    ``layer_rows[l]`` is the number of destination rows the layer-``l``
    feature-update GEMM processes; ``layer_edges[l]`` the number of
    aggregation edges feeding it.
    """

    batch_size: int
    edges_per_iter: float
    input_nodes_per_iter: float
    layer_edges: tuple[float, ...]
    layer_rows: tuple[float, ...]
    #: edges of the *distinct* sampled structures — for neighbour sampling
    #: every block is sampled separately (== edges_per_iter), but ShaDow
    #: builds one subgraph and reuses it for all layers, so the sampler
    #: only pays for it once even though aggregation runs L times.
    structure_edges_per_iter: float = 0.0

    @property
    def num_layers(self) -> int:
        return len(self.layer_edges)


def measure_workload(
    dataset: GNNDataset,
    sampler: Sampler,
    batch_size: int,
    *,
    num_batches: int = 8,
    seed: int = 0,
) -> WorkloadSample:
    """Sample ``num_batches`` mini-batches and average their block sizes.

    Seeds are drawn from the full node set (workload characterisation does
    not care about the train/test split), without replacement within a
    batch.  Deterministic in ``seed``.
    """
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if num_batches < 1:
        raise ValueError(f"num_batches must be >= 1, got {num_batches}")
    n = dataset.num_nodes
    bs = min(batch_size, n)
    rng = derive_rng(seed, "workload", dataset.name, sampler.name, batch_size)
    edges = np.zeros(num_batches)
    structure_edges = np.zeros(num_batches)
    inputs = np.zeros(num_batches)
    layer_edges = None
    layer_rows = None
    for i in range(num_batches):
        seeds = rng.choice(n, size=bs, replace=False)
        batch = sampler.sample(dataset.graph, seeds, rng=rng)
        edges[i] = batch.total_edges
        # distinct structures: ShaDow reuses one Block object across layers
        structure_edges[i] = sum(
            blk.num_edges for blk in {id(b): b for b in batch.blocks}.values()
        )
        inputs[i] = batch.blocks[0].num_src
        if layer_edges is None:
            layer_edges = np.zeros((num_batches, batch.num_layers))
            layer_rows = np.zeros((num_batches, batch.num_layers))
        for l, blk in enumerate(batch.blocks):
            layer_edges[i, l] = blk.num_edges
            layer_rows[i, l] = blk.num_dst
    return WorkloadSample(
        batch_size=batch_size,
        edges_per_iter=float(edges.mean()),
        input_nodes_per_iter=float(inputs.mean()),
        layer_edges=tuple(layer_edges.mean(axis=0)),
        layer_rows=tuple(layer_rows.mean(axis=0)),
        structure_edges_per_iter=float(structure_edges.mean()),
    )


def duplicate_aggregation_count(
    dataset: GNNDataset,
    sampler: Sampler,
    batch_size: int,
    num_splits: int,
    *,
    seed: int = 0,
) -> tuple[float, float]:
    """Quantify the paper's Figure 5 effect on real data.

    Samples one batch of ``batch_size`` seeds as a whole and again split
    into ``num_splits`` sub-batches, returning
    ``(edges_whole, edges_split_total)``.  Splitting loses shared
    neighbours, so ``edges_split_total >= edges_whole`` in expectation —
    the workload-inflation mechanism behind Fig. 6.
    """
    if num_splits < 1 or num_splits > batch_size:
        raise ValueError("need 1 <= num_splits <= batch_size")
    n = dataset.num_nodes
    bs = min(batch_size, n)
    rng = derive_rng(seed, "fig5", dataset.name, batch_size, num_splits)
    seeds = rng.choice(n, size=bs, replace=False)
    whole = sampler.sample(dataset.graph, seeds, rng=derive_rng(seed, "w")).total_edges
    split_total = 0
    for part in np.array_split(seeds, num_splits):
        split_total += sampler.sample(
            dataset.graph, part, rng=derive_rng(seed, "s", len(part))
        ).total_edges
    return float(whole), float(split_total)
