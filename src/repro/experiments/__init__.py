"""Experiment harness: one builder per paper table/figure.

Each builder returns plain data (lists of dicts) that the benchmark
scripts print with :mod:`repro.experiments.reporting`; EXPERIMENTS.md
records the paper-vs-measured comparison.
"""

from repro.experiments.setups import ExperimentSetup, build_runtime, PAPER_SETUPS
from repro.experiments.figures import (
    fig1_baseline_scalability,
    fig2_time_traces,
    fig6_workload_bandwidth,
    fig7_landscape,
    fig8_argo_scalability,
    fig9_convergence,
    fig10_overall_training,
)
from repro.experiments.tables import (
    table4_5_row,
    table6_search_budgets,
)
from repro.experiments.reporting import render_table, render_series, render_heatmap

__all__ = [
    "ExperimentSetup",
    "build_runtime",
    "PAPER_SETUPS",
    "fig1_baseline_scalability",
    "fig2_time_traces",
    "fig6_workload_bandwidth",
    "fig7_landscape",
    "fig8_argo_scalability",
    "fig9_convergence",
    "fig10_overall_training",
    "table4_5_row",
    "table6_search_budgets",
    "render_table",
    "render_series",
    "render_heatmap",
]
