"""ASCII rendering of tables, series and heatmaps for the benchmark logs."""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["render_table", "render_series", "render_heatmap"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """Fixed-width table; numbers formatted to 3 significant places."""

    def fmt(v) -> str:
        if isinstance(v, float):
            if v == 0:
                return "0"
            if abs(v) >= 100:
                return f"{v:.1f}"
            if abs(v) >= 1:
                return f"{v:.2f}"
            return f"{v:.3f}"
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    xs: Sequence[float],
    named_series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    width: int = 50,
    higher_is_better: bool = True,
) -> str:
    """Horizontal bar chart per x value, one row per (x, series)."""
    lines = [title] if title else []
    all_vals = [v for series in named_series.values() for v in series]
    top = max(all_vals) if all_vals else 1.0
    name_w = max(len(n) for n in named_series)
    for i, x in enumerate(xs):
        for name, series in named_series.items():
            v = series[i]
            bar = "#" * max(1, int(round(v / top * width)))
            lines.append(f"{str(x):>6} {name.ljust(name_w)} |{bar} {v:.3g}")
        lines.append("")
    return "\n".join(lines)


def render_heatmap(
    grid: Mapping[tuple[int, int], float], *, title: str = "", invert: bool = True
) -> str:
    """Character heatmap over integer (x, y) keys.

    With ``invert=True`` low values (good epoch times) render dark —
    matching the paper's Fig. 7 where the optimum is the dark region.
    """
    if not grid:
        return "(empty grid)"
    shades = " .:-=+*#%@"
    xs = sorted({x for x, _ in grid})
    ys = sorted({y for _, y in grid})
    vals = np.array(list(grid.values()))
    lo, hi = vals.min(), vals.max()
    span = hi - lo if hi > lo else 1.0
    lines = [title] if title else []
    for y in reversed(ys):
        row = []
        for x in xs:
            v = grid.get((x, y))
            if v is None:
                row.append(" ")
                continue
            t = (v - lo) / span
            if invert:
                t = 1.0 - t
            row.append(shades[int(round(t * (len(shades) - 1)))])
        lines.append(f"{y:>4} |" + "".join(row))
    lines.append("      " + "".join(str(x)[-1] for x in xs))
    lines.append(f"   x={xs[0]}..{xs[-1]}  (dark = {'fast' if invert else 'slow'})")
    return "\n".join(lines)
