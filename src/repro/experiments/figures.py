"""Series builders for every figure of the paper's evaluation."""

from __future__ import annotations

import time

import numpy as np

from repro.core.engine import MultiProcessEngine
from repro.experiments.setups import ExperimentSetup, build_runtime
from repro.gnn.models import make_task
from repro.graph.datasets import load_dataset
from repro.platform.simulator import SimulatedRuntime
from repro.platform.spec import PLATFORMS
from repro.platform.trace import Trace
from repro.tuning.space import ConfigSpace

__all__ = [
    "fig1_baseline_scalability",
    "fig1_engine_backend_sweep",
    "fig1_overlap_sweep",
    "fig2_time_traces",
    "fig6_workload_bandwidth",
    "fig7_landscape",
    "fig8_argo_scalability",
    "fig8_persistent_overhead",
    "fig9_convergence",
    "fig10_overall_training",
]


def _core_grid(total: int) -> list[int]:
    cores = [c for c in (4, 8, 16, 32, 64, 128) if c <= total]
    if total not in cores:
        cores.append(total)
    return cores


def fig1_baseline_scalability(
    dataset: str = "ogbn-products", platform: str = "icelake", *, seed: int = 0
) -> dict:
    """Fig. 1: DGL/PyG speedup vs core count, normalised to 4 cores."""
    total = PLATFORMS[platform].total_cores
    cores = _core_grid(total)
    series = {}
    for lib in ("dgl", "pyg"):
        rt, _ = build_runtime(
            ExperimentSetup("neighbor-sage", dataset, platform, lib), seed=seed
        )
        times = [rt.baseline_epoch_time(c) for c in cores]
        series[lib.upper()] = [times[0] / t for t in times]
    return {"cores": cores, "speedup": series}


def fig1_engine_backend_sweep(
    dataset: str = "ogbn-products",
    *,
    backends: tuple[str, ...] = ("inline", "thread", "process"),
    num_processes: int = 2,
    epochs: int = 1,
    scale_override: int = 10,
    global_batch: int = 128,
    task: str = "neighbor-sage",
    seed: int = 0,
) -> dict:
    """Measured wall-clock epoch times of the *real* engine per backend.

    The simulated Fig. 1 models the paper's 112-core testbeds; this sweep
    runs the actual Multi-Process Engine on a local synthetic instance
    under every requested execution backend.  Same seed everywhere, so
    the per-backend loss trajectories double as a semantics check (they
    agree to float tolerance).
    """
    ds = load_dataset(dataset, seed=seed, scale_override=scale_override)
    out: dict = {
        "backends": list(backends),
        "epoch_time": {},
        "losses": {},
        "launch_time": {},
    }
    for backend in backends:
        sampler, model = make_task(task, ds.layer_dims(2), seed=7)
        engine = MultiProcessEngine(
            ds,
            sampler,
            model,
            num_processes=num_processes,
            global_batch_size=global_batch,
            backend=backend,
            seed=seed,
        )
        try:
            hist = engine.train(epochs)
            out["epoch_time"][backend] = [e.epoch_time for e in hist.epochs]
            out["losses"][backend] = list(hist.losses)
            out["launch_time"][backend] = [e.launch_time for e in hist.epochs]
        finally:
            engine.shutdown()
    return out


def fig1_overlap_sweep(
    dataset: str = "ogbn-products",
    *,
    samplers: tuple[int, ...] = (1, 2, 4),
    queue_depth: int = 4,
    scale_override: int = 11,
    batch_size: int = 64,
    task: str = "neighbor-sage",
    seed: int = 0,
    mode: str = "process",
) -> dict:
    """Overlap on/off sweep: sample-wait time vs sampler workers ``s``.

    Two regimes over one pass of every node of a synthetic instance
    through a :class:`~repro.sampling.dataloader.NodeDataLoader`
    (3-layer fanouts — sampling is the expensive stage), both against
    the synchronous baseline (``*_off``):

    * **overlap** — a fixed forward/backward compute per batch;
      ``wait[s]`` is the residual batch-acquisition wait with ``s``
      sampler workers running ``queue_depth`` ahead.  Prefetching hides
      sampling behind compute: ``wait[s] < wait_off``.
    * **drain** — no compute, the consumer just drains batches;
      ``drain[s]`` is then the sampler pipeline's makespan, which falls
      as ``s`` grows (``mode="process"`` samples in true parallel over
      the shared-memory graph) — the paper's sampler-core scalability.

    Per-batch losses are returned for every overlap setting — they are
    bit-identical to the synchronous pass, the pipeline's
    semantics-preservation contract.
    """
    from repro.autograd.functional import cross_entropy
    from repro.autograd.ops import gather_rows
    from repro.autograd.tensor import Tensor
    from repro.pipeline import PrefetchingLoader
    from repro.sampling.dataloader import NodeDataLoader

    ds = load_dataset(dataset, seed=seed, scale_override=scale_override)
    features = Tensor(ds.features)
    all_nodes = np.arange(ds.graph.num_nodes, dtype=np.int64)

    def make_loader() -> NodeDataLoader:
        sampler, _ = make_task(task, ds.layer_dims(3), seed=7)
        return NodeDataLoader(
            graph=ds.graph,
            nodes=all_nodes,
            labels=ds.labels,
            sampler=sampler,
            batch_size=batch_size,
            seed=seed,
        )

    def consume(source, compute: bool) -> tuple[list[float], float, float]:
        """Iterate ``source``, optionally running the compute stage."""
        _, model = make_task(task, ds.layer_dims(3), seed=7)
        losses: list[float] = []
        wait = 0.0
        start_all = time.perf_counter()
        it = iter(source)
        while True:
            start = time.perf_counter()
            try:
                batch = next(it)
            except StopIteration:
                break
            wait += time.perf_counter() - start
            if compute:
                x = gather_rows(features, batch.input_ids)
                out = model(batch.blocks, x)
                loss = cross_entropy(out, batch.labels)
                loss.backward()
                model.zero_grad()
                losses.append(loss.item())
        return losses, wait, time.perf_counter() - start_all

    def prefetched(s: int) -> PrefetchingLoader:
        return PrefetchingLoader(
            make_loader(), num_workers=s, queue_depth=max(queue_depth, s), mode=mode
        )

    out: dict = {
        "samplers": list(samplers),
        "queue_depth": queue_depth,
        "wait": {},
        "drain": {},
        "losses": {},
        "epoch_time": {},
    }
    out["losses_off"], out["wait_off"], out["time_off"] = consume(make_loader(), True)
    _, out["drain_off"], _ = consume(make_loader(), False)
    for s in samplers:
        with prefetched(s) as loader:
            losses, wait, total = consume(loader, True)
        out["losses"][s] = losses
        out["wait"][s] = wait
        out["epoch_time"][s] = total
        with prefetched(s) as loader:
            _, out["drain"][s], _ = consume(loader, False)
    return out


def fig2_time_traces(
    dataset: str = "ogbn-products", platform: str = "icelake", *, seed: int = 0
) -> dict[str, Trace]:
    """Fig. 2: single-process vs two-process execution traces."""
    rt, _ = build_runtime(ExperimentSetup("neighbor-sage", dataset, platform, "dgl"), seed=seed)
    return {
        "single": rt.make_trace((1, 4, 24), iterations=4),
        "dual": rt.make_trace((2, 4, 24), iterations=4),
    }


def fig6_workload_bandwidth(
    dataset: str = "ogbn-products", platform: str = "icelake", *, seed: int = 0
) -> list[dict]:
    """Fig. 6: epoch workload (edges) and bandwidth vs process count.

    As in the paper, each point uses the whole machine: ``n`` processes
    with 2 sampling cores each and the remaining cores for training.
    """
    rt, _ = build_runtime(ExperimentSetup("neighbor-sage", dataset, platform, "dgl"), seed=seed)
    total = PLATFORMS[platform].total_cores
    rows = []
    for n in (1, 2, 4, 8, 16):
        per_proc = total // n
        if per_proc < 3:
            break
        rows.extend(rt.workload_and_bandwidth_curve([n], 2, per_proc - 2))
    return rows


def fig7_landscape(setup: ExperimentSetup, *, seed: int = 0) -> dict:
    """Fig. 7/12: epoch time over the (processes, sampling cores) plane.

    Training cores absorb the rest of the per-process allocation (the
    paper fixes them for 2-D visualisation).
    """
    rt, space = build_runtime(setup, seed=seed)
    grid = {}
    for n, s, t in space:
        grid[(n, s)] = rt.true_epoch_time((n, s, t))
    best = min(grid, key=grid.get)
    return {"grid": grid, "best": best, "setup": setup.label}


def fig8_argo_scalability(
    dataset: str = "ogbn-products", platform: str = "icelake", *, seed: int = 0
) -> dict:
    """Fig. 8: baseline vs ARGO speedup per core budget (one panel)."""
    total = PLATFORMS[platform].total_cores
    cores = _core_grid(total)
    out: dict[str, dict] = {"cores": cores, "series": {}}
    for lib in ("dgl", "pyg"):
        for task in ("neighbor-sage", "shadow-gcn"):
            rt, _ = build_runtime(ExperimentSetup(task, dataset, platform, lib), seed=seed)
            base = [rt.baseline_epoch_time(c) for c in cores]
            argo = [rt.argo_best_epoch_time(c)[0] for c in cores]
            out["series"][f"{lib.upper()}-{task}"] = [base[0] / t for t in base]
            out["series"][f"ARGO-{lib.upper()}-{task}"] = [argo[0] / t for t in argo]
    return out


def fig8_persistent_overhead(
    dataset: str = "ogbn-products",
    *,
    num_processes: int = 2,
    epochs: int = 4,
    scale_override: int = 10,
    global_batch: int = 128,
    task: str = "neighbor-sage",
    seed: int = 0,
) -> dict:
    """Measured relaunch tax: persistent worker pool vs respawn-per-epoch.

    Trains the real Multi-Process Engine twice under the process backend
    — once with the persistent runtime (workers forked at epoch 0, plans
    shipped over command queues, weights over the shared-memory param
    store) and once in the original respawn mode (fresh forks + pickled
    replicas every epoch) — and records per-epoch ``launch_time``
    alongside total epoch time and the loss stream.

    The acceptance shape: in persistent mode only epoch 0 pays the fork,
    ``launch_time`` after that collapses to a weight memcpy (≈0); in
    respawn mode every epoch pays, which is exactly the overhead the
    online tuner's wall-clock signal used to carry.  Losses are
    bit-identical between the modes.
    """
    ds = load_dataset(dataset, seed=seed, scale_override=scale_override)
    out: dict = {"modes": ["persistent", "respawn"], "launch_time": {}, "epoch_time": {}, "losses": {}}
    for mode, persistent in (("persistent", True), ("respawn", False)):
        sampler, model = make_task(task, ds.layer_dims(2), seed=7)
        engine = MultiProcessEngine(
            ds,
            sampler,
            model,
            num_processes=num_processes,
            global_batch_size=global_batch,
            backend="process",
            seed=seed,
            persistent=persistent,
        )
        try:
            hist = engine.train(epochs)
            out["launch_time"][mode] = [e.launch_time for e in hist.epochs]
            out["epoch_time"][mode] = [e.epoch_time for e in hist.epochs]
            out["losses"][mode] = list(hist.losses)
        finally:
            engine.shutdown()
    return out


def fig9_convergence(
    *,
    dataset: str = "ogbn-products",
    task: str = "neighbor-sage",
    process_counts: tuple[int, ...] = (1, 2, 4, 8),
    epochs: int = 6,
    scale_override: int = 11,
    global_batch: int = 256,
    seed: int = 0,
) -> dict:
    """Fig. 9 on the *real* engine: accuracy vs minibatch count per n.

    ``n=1`` plays the paper's "DGL" baseline; the curves for every n must
    overlap (semantics preservation).
    """
    ds = load_dataset(dataset, seed=seed, scale_override=scale_override)
    curves = {}
    for n in process_counts:
        sampler, model = make_task(task, ds.layer_dims(2), seed=7)
        engine = MultiProcessEngine(
            ds,
            sampler,
            model,
            num_processes=n,
            global_batch_size=global_batch,
            backend="inline",
            seed=seed,
        )
        engine.record_accuracy()
        engine.train(epochs, eval_every=1)
        label = "DGL" if n == 1 else f"ARGO:{n}"
        curves[label] = list(engine.history.accuracy_curve)
    return {"curves": curves, "epochs": epochs}


def fig10_overall_training(
    setup: ExperimentSetup, *, epochs: int = 200, seed: int = 0
) -> dict:
    """Fig. 10/11: end-to-end 200-epoch time, library default vs ARGO.

    The ARGO total includes the online-learning epochs at sub-optimal
    configurations and the tuner's own overhead, exactly as the paper
    measures it.
    """
    from repro.core.argo import ARGO

    rt, space = build_runtime(setup, seed=seed)
    total_cores = PLATFORMS[setup.platform].total_cores
    default_total = epochs * rt.baseline_epoch_time(total_cores)

    def train(*, config, epochs):
        return [rt.measure_epoch(config.as_tuple()) for _ in range(epochs)]

    result = ARGO(epoch=epochs, space=space, seed=seed).run(train)
    return {
        "setup": setup.label,
        "default_total": default_total,
        "argo_total": result.total_time,
        "speedup": default_total / result.total_time,
        "best_config": result.best_config.as_tuple(),
    }
