"""Row builders for Tables IV, V and VI."""

from __future__ import annotations

import numpy as np

from repro.core.autotuner import OnlineAutoTuner
from repro.experiments.setups import ExperimentSetup, build_runtime
from repro.platform.spec import PLATFORMS
from repro.tuning.anneal import SimulatedAnnealing
from repro.tuning.search import ExhaustiveSearch
from repro.tuning.space import ConfigSpace

__all__ = ["table4_5_row", "table6_search_budgets"]


def table4_5_row(
    setup: ExperimentSetup,
    *,
    seed: int = 0,
    sa_repeats: int = 5,
    budget_fraction: float = 0.05,
) -> dict:
    """One row of Table IV (DGL) / Table V (PyG).

    Returns the epoch time of the configuration each strategy finds —
    Exhaustive (the oracle), the library Default, Simulated Annealing
    (mean +/- std over ``sa_repeats`` runs, as the paper reports for its
    random baseline) and the BayesOpt Auto-Tuner — plus each strategy's
    ratio to the oracle.
    """
    rt, space = build_runtime(setup, seed=seed)
    budget = space.paper_budget(budget_fraction)
    total = PLATFORMS[setup.platform].total_cores

    # Exhaustive oracle (noise-free sweep)
    exhaustive, _ = rt.argo_best_epoch_time(total, space)

    # Library default
    default = rt.baseline_epoch_time(total)

    # Simulated annealing: repeated noisy searches
    sa_times = []
    for rep in range(sa_repeats):
        res = SimulatedAnnealing().run(rt.measure_epoch, space, budget, seed=seed * 101 + rep)
        sa_times.append(rt.true_epoch_time(res.best_config))
    sa_mean, sa_std = float(np.mean(sa_times)), float(np.std(sa_times))

    # Auto-tuner
    tuner = OnlineAutoTuner(space, budget, seed=seed)
    res = tuner.tune(rt.measure_epoch)
    auto = rt.true_epoch_time(res.best_config)

    return {
        "setup": setup.label,
        "exhaustive": exhaustive,
        "default": default,
        "sim_anneal_mean": sa_mean,
        "sim_anneal_std": sa_std,
        "auto_tuner": auto,
        "default_ratio": exhaustive / default,
        "sim_anneal_ratio": exhaustive / sa_mean,
        "auto_tuner_ratio": exhaustive / auto,
        "budget": budget,
        "best_config": res.best_config,
    }


def table6_search_budgets(budget_fraction: float = 0.05) -> list[dict]:
    """Table VI: design-space sizes and search budgets per platform.

    The paper's grid has 726/408 points (enumeration rule unpublished);
    ours has 295/164 — the *fraction* explored is held at the paper's
    5-6%.  Both sizes are reported side by side.
    """
    paper_sizes = {"icelake": 726, "sapphire": 408}
    paper_budgets = {
        ("icelake", "neighbor-sage"): 35,
        ("icelake", "shadow-gcn"): 45,
        ("sapphire", "neighbor-sage"): 20,
        ("sapphire", "shadow-gcn"): 25,
    }
    rows = []
    for platform, spec in PLATFORMS.items():
        space = ConfigSpace(spec.total_cores)
        for task in ("neighbor-sage", "shadow-gcn"):
            frac = budget_fraction if task == "neighbor-sage" else budget_fraction * 1.2
            budget = space.paper_budget(frac)
            rows.append(
                {
                    "platform": spec.name,
                    "task": task,
                    "space_size": len(space),
                    "paper_space_size": paper_sizes[platform],
                    "budget": budget,
                    "paper_budget": paper_budgets[(platform, task)],
                    "fraction": budget / len(space),
                }
            )
    return rows
