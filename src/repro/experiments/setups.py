"""Experiment setup plumbing shared by all benchmarks.

An :class:`ExperimentSetup` names one cell of the paper's evaluation
matrix — (task, dataset, platform, library) — and :func:`build_runtime`
turns it into a ready :class:`SimulatedRuntime` + :class:`ConfigSpace`,
with workload models cached per (dataset, sampler) pair because the
measurement pass is the only expensive step.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.gnn.models import TASKS, make_task
from repro.graph.datasets import load_dataset
from repro.platform.costmodel import CostModel
from repro.platform.library import LIBRARIES
from repro.platform.simulator import SimulatedRuntime
from repro.platform.spec import PLATFORMS
from repro.tuning.space import ConfigSpace
from repro.workload.model import WorkloadModel

__all__ = ["ExperimentSetup", "build_runtime", "PAPER_SETUPS", "DATASET_NAMES"]

DATASET_NAMES = ["flickr", "reddit", "ogbn-products", "ogbn-papers100M"]


@dataclass(frozen=True)
class ExperimentSetup:
    """One cell of the evaluation matrix."""

    task: str  # "neighbor-sage" | "shadow-gcn"
    dataset: str  # paper dataset name
    platform: str  # "icelake" | "sapphire"
    library: str  # "dgl" | "pyg"

    def __post_init__(self):
        if self.task not in TASKS:
            raise ValueError(f"unknown task {self.task!r}")
        if self.platform not in PLATFORMS:
            raise ValueError(f"unknown platform {self.platform!r}")
        if self.library not in LIBRARIES:
            raise ValueError(f"unknown library {self.library!r}")

    @property
    def label(self) -> str:
        return f"{self.library.upper()}-{self.task}-{self.dataset}@{self.platform}"


#: the full evaluation matrix of Tables IV/V (2 x 4 x 2 x 2 = 32 cells)
PAPER_SETUPS = [
    ExperimentSetup(task, ds, plat, lib)
    for task in TASKS
    for ds in DATASET_NAMES
    for plat in PLATFORMS
    for lib in LIBRARIES
]


@lru_cache(maxsize=None)
def _dataset(name: str, seed: int):
    return load_dataset(name, seed=seed)


@lru_cache(maxsize=None)
def _workload(dataset: str, task: str, seed: int) -> WorkloadModel:
    ds = _dataset(dataset, seed)
    sampler, _ = make_task(task, ds.layer_dims(3), seed=seed)
    return WorkloadModel(ds, sampler, num_batches=4, seed=seed)


def build_runtime(
    setup: ExperimentSetup, *, seed: int = 0, noise: float = 0.015
) -> tuple[SimulatedRuntime, ConfigSpace]:
    """Instantiate the simulator + design space for one evaluation cell."""
    ds = _dataset(setup.dataset, seed)
    platform = PLATFORMS[setup.platform]
    library = LIBRARIES[setup.library]
    sampler_name, model_name = TASKS[setup.task]
    cm = CostModel(
        platform,
        library,
        _workload(setup.dataset, setup.task, seed),
        sampler_name=sampler_name,
        model_name=model_name,
        dims=ds.layer_dims(3),
        train_nodes=ds.spec.paper_train_nodes,
    )
    return SimulatedRuntime(cm, noise=noise, seed=seed), ConfigSpace(platform.total_cores)
