"""The ARGO configuration design space.

A configuration is ``(n, s, t)``: the number of GNN training processes,
and the sampling/training cores bound to *each* process (paper Sec. V).
The canonical space uses the whole machine for each candidate — processes
split the cores evenly (``s + t = total // n``) and the split point ``s``
is free:

    n in {1, ..., max_processes},  s in [1, total//n - 1],  t = total//n - s.

This yields 295 configurations on the 112-core Ice Lake and 164 on the
64-core Sapphire Rapids.  The paper reports 726 and 408 for its grid; the
exact enumeration rule is not published, so our space is smaller but
spans the same axes and ranges — the auto-tuner's search *fraction*
(5-6%) is preserved by scaling the budget to our space size
(see :meth:`paper_budget`).

``features()`` maps configs to a normalised ``[0, 1]^2`` cube —
``(log2(n)/log2(n_max), s/(s+t))`` — the GP surrogate's input space.
Core counts enter the second coordinate as a *fraction*, which makes the
landscape comparably smooth across process counts (Fig. 7's heatmaps use
the same two axes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.platform.spec import PlatformSpec
from repro.utils.validation import check_positive_int

__all__ = ["ConfigSpace", "BackendSpace"]

Config = tuple[int, int, int]
#: a config extended with an execution-backend name (BackendSpace points);
#: with a searched queue depth the points grow to (n, s, t, backend, q)
BackendConfig = tuple[int, int, int, str]


def _paper_budget(space_size: int, fraction: float) -> int:
    """Search budget covering ``fraction`` of a space (paper: 5-6%)."""
    if not 0 < fraction <= 1:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    return max(3, int(round(fraction * space_size)))


class ConfigSpace:
    """Finite enumeration of valid runtime configurations.

    The canonical space is 2-D per process count (``t`` is determined by
    ``s``); :meth:`full3d` builds the higher-dimensional variant of the
    paper's Sec. VII-B discussion where the training-core count is a free
    third axis (configurations may deliberately leave cores idle).
    """

    def __init__(
        self,
        total_cores: int,
        *,
        max_processes: int = 8,
        process_counts=None,
        _configs: list[Config] | None = None,
        _three_d: bool = False,
    ):
        total_cores = check_positive_int(total_cores, "total_cores")
        if total_cores < 2:
            raise ValueError("need at least 2 cores (1 sampling + 1 training)")
        if process_counts is None:
            max_processes = check_positive_int(max_processes, "max_processes")
            process_counts = range(1, max_processes + 1)
        self.total_cores = total_cores
        self.process_counts = sorted({int(n) for n in process_counts})
        if not self.process_counts or self.process_counts[0] < 1:
            raise ValueError("process_counts must be positive")
        self.three_d = bool(_three_d)
        if _configs is not None:
            configs = list(_configs)
        else:
            configs = []
            for n in self.process_counts:
                per_proc = total_cores // n
                if per_proc < 2:
                    continue
                for s in range(1, per_proc):
                    configs.append((n, s, per_proc - s))
        if not configs:
            raise ValueError(f"no valid configurations for {total_cores} cores")
        self.configs: list[Config] = configs
        self._index = {cfg: i for i, cfg in enumerate(configs)}
        self._max_n = max(n for n, _, _ in configs)

    @classmethod
    def for_platform(cls, platform: PlatformSpec, **kwargs) -> "ConfigSpace":
        return cls(platform.total_cores, **kwargs)

    @classmethod
    def full3d(cls, total_cores: int, *, max_processes: int = 8) -> "ConfigSpace":
        """The 3-D design space: ``t`` free, cores may stay idle.

        Every ``(n, s, t)`` with ``n * (s + t) <= total_cores`` is a
        candidate — the exponential growth the paper's Sec. VII-B warns
        pruning-based search about (e.g. ~9000 points on 112 cores vs the
        canonical 295).
        """
        total_cores = check_positive_int(total_cores, "total_cores")
        max_processes = check_positive_int(max_processes, "max_processes")
        configs: list[Config] = []
        for n in range(1, max_processes + 1):
            budget = total_cores // n
            if budget < 2:
                continue
            for s in range(1, budget):
                for t in range(1, budget - s + 1):
                    configs.append((n, s, t))
        return cls(
            total_cores,
            max_processes=max_processes,
            _configs=configs,
            _three_d=True,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self):
        return iter(self.configs)

    def __contains__(self, cfg) -> bool:
        return tuple(cfg) in self._index

    def index(self, cfg: Config) -> int:
        return self._index[tuple(cfg)]

    def paper_budget(self, fraction: float = 0.05) -> int:
        """Search budget covering ``fraction`` of the space (paper: 5-6%)."""
        return _paper_budget(len(self), fraction)

    # ------------------------------------------------------------------
    def features(self) -> np.ndarray:
        """Normalised surrogate features, one row per config.

        Canonical spaces use 2 dims (log process count, sampling split);
        3-D spaces add core utilisation ``n (s + t) / total`` as a third
        coordinate (otherwise distinct configs would collide).
        """
        d = 3 if self.three_d else 2
        feats = np.zeros((len(self.configs), d), dtype=np.float64)
        log_max = np.log2(max(self._max_n, 2))
        for i, (n, s, t) in enumerate(self.configs):
            feats[i, 0] = np.log2(n) / log_max
            feats[i, 1] = s / (s + t)
            if self.three_d:
                feats[i, 2] = n * (s + t) / self.total_cores
        return feats

    def neighbors(self, cfg: Config) -> list[Config]:
        """Adjacent configurations (simulated-annealing moves).

        Moves: shift the sampling/training split by ±1, or change the
        process count by one step (re-scaling the split fraction).
        """
        n, s, t = cfg
        if cfg not in self:
            raise KeyError(f"{cfg} not in space")
        out: list[Config] = []
        for ds in (-1, 1):
            cand = (n, s + ds, t - ds)
            if cand in self:
                out.append(cand)
        if self.three_d:
            # the utilisation axis: grow/shrink one side independently
            for cand in ((n, s + 1, t), (n, s - 1, t), (n, s, t + 1), (n, s, t - 1)):
                if cand in self and cand not in out:
                    out.append(cand)
        idx = self.process_counts.index(n)
        frac = s / (s + t)
        for dn in (-1, 1):
            j = idx + dn
            if 0 <= j < len(self.process_counts):
                n2 = self.process_counts[j]
                per = self.total_cores // n2
                if per >= 2:
                    s2 = min(per - 1, max(1, int(round(frac * per))))
                    cand = (n2, s2, per - s2)
                    if cand in self:
                        out.append(cand)
        return out

    def random_config(self, rng: np.random.Generator) -> Config:
        return self.configs[int(rng.integers(len(self.configs)))]


class BackendSpace:
    """A :class:`ConfigSpace` crossed with a set of execution backends.

    Points are ``(n, s, t, backend)`` — the original design space plus a
    categorical axis over :mod:`repro.exec` backend names, so the online
    autotuner can discover e.g. that ``process`` beats ``thread`` once
    the rank count saturates the GIL.  Passing ``queue_depths`` adds the
    overlap pipeline's lookahead bound as a further axis: points become
    ``(n, s, t, backend, queue_depth)`` and
    :meth:`repro.core.config.RuntimeConfig.from_tuple` maps them to
    prefetch-enabled configs, making ``queue_depth`` a searched runtime
    knob rather than a hand-set constant.  The class is duck-compatible
    with :class:`ConfigSpace` everywhere the tuners need it
    (``configs``, ``features``, ``index``, ``neighbors``,
    ``paper_budget``, ``random_config``); ``RuntimeConfig.from_tuple``
    accepts its 4- and 5-tuples directly.
    """

    def __init__(
        self,
        base: ConfigSpace,
        backends=("inline", "thread", "process"),
        *,
        queue_depths=None,
    ):
        from repro.exec import available_backends  # lazy: avoid import cycle

        # normalize like get_backend; dedupe, keep order
        backends = tuple(dict.fromkeys(str(b).lower() for b in backends))
        if not backends:
            raise ValueError("BackendSpace needs at least one backend")
        unknown = set(backends) - set(available_backends())
        if unknown:
            raise ValueError(
                f"unknown backends {sorted(unknown)}; registered: "
                f"{sorted(available_backends())}"
            )
        if queue_depths is not None:
            queue_depths = tuple(sorted({check_positive_int(q, "queue_depth") for q in queue_depths}))
            if not queue_depths:
                raise ValueError("queue_depths must be non-empty when given")
        self.base = base
        self.backends = backends
        self.queue_depths: tuple[int, ...] | None = queue_depths
        self.total_cores = base.total_cores
        if queue_depths is None:
            self.configs: list[BackendConfig] = [
                (n, s, t, b) for b in backends for (n, s, t) in base.configs
            ]
        else:
            self.configs = [
                (n, s, t, b, q)
                for q in queue_depths
                for b in backends
                for (n, s, t) in base.configs
            ]
        self._index = {cfg: i for i, cfg in enumerate(self.configs)}

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self):
        return iter(self.configs)

    def __contains__(self, cfg) -> bool:
        return tuple(cfg) in self._index

    def index(self, cfg: BackendConfig) -> int:
        return self._index[tuple(cfg)]

    def paper_budget(self, fraction: float = 0.05) -> int:
        return _paper_budget(len(self), fraction)

    def features(self) -> np.ndarray:
        """Base features plus one normalised categorical backend column
        (and, with searched depths, a log-scaled queue-depth column)."""
        base_feats = self.base.features()
        k = len(self.backends)
        extra = 1 if self.queue_depths is None else 2
        rows = np.zeros(
            (len(self.configs), base_feats.shape[1] + extra), dtype=np.float64
        )
        n_base = len(self.base.configs)
        block = k * n_base  # rows per queue-depth value
        depths = (None,) if self.queue_depths is None else self.queue_depths
        log_max_q = np.log2(max(depths[-1], 2)) if self.queue_depths else 1.0
        for qi, q in enumerate(depths):
            for bi in range(k):
                lo = qi * block + bi * n_base
                hi = lo + n_base
                rows[lo:hi, : base_feats.shape[1]] = base_feats
                rows[lo:hi, base_feats.shape[1]] = bi / max(1, k - 1)
                if q is not None:
                    rows[lo:hi, -1] = np.log2(q) / log_max_q
        return rows

    def neighbors(self, cfg: BackendConfig) -> list[BackendConfig]:
        """Base-space moves at the same backend, plus backend flips (and,
        with searched depths, one-step queue-depth moves)."""
        if cfg not in self:
            raise KeyError(f"{cfg} not in space")
        if self.queue_depths is None:
            n, s, t, b = cfg
            tail: tuple = ()
        else:
            n, s, t, b, q = cfg
            tail = (q,)
        out = [
            (n2, s2, t2, b, *tail) for (n2, s2, t2) in self.base.neighbors((n, s, t))
        ]
        bi = self.backends.index(b)
        for db in (-1, 1):
            j = bi + db
            if 0 <= j < len(self.backends):
                out.append((n, s, t, self.backends[j], *tail))
        if self.queue_depths is not None:
            qi = self.queue_depths.index(q)
            for dq in (-1, 1):
                j = qi + dq
                if 0 <= j < len(self.queue_depths):
                    out.append((n, s, t, b, self.queue_depths[j]))
        return out

    def random_config(self, rng: np.random.Generator) -> BackendConfig:
        return self.configs[int(rng.integers(len(self.configs)))]
