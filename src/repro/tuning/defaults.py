"""Default configurations: library guidelines and runtime-knob defaults.

Both DGL and PyG publish CPU best-practice guides (paper refs [24], [25])
prescribing a single training process with a small number of dataloader
workers and the remaining cores for compute.  The paper uses these as the
static ``Default`` column of Tables IV/V.

This module also carries the runtime pipeline's knob defaults: the
queue-depth values the autotuner searches when the overlap pipeline's
lookahead bound is made a tunable axis (``BackendSpace(...,
queue_depths=QUEUE_DEPTH_CHOICES)``), and a helper assembling the full
searched space for a platform.
"""

from __future__ import annotations

from repro.platform.library import LibraryProfile
from repro.platform.spec import PlatformSpec

__all__ = [
    "default_config",
    "DEFAULT_QUEUE_DEPTH",
    "QUEUE_DEPTH_CHOICES",
    "default_backend_space",
]

#: static lookahead used when the tuner does not search the axis — one
#: batch beyond double buffering absorbs sampler jitter without hoarding
#: memory
DEFAULT_QUEUE_DEPTH = 2

#: the queue-depth axis the autotuner searches: powers of two from plain
#: double buffering (1) to deep lookahead (8); beyond that the bounded
#: queue's memory grows with no hiding left to buy
QUEUE_DEPTH_CHOICES: tuple[int, ...] = (1, 2, 4, 8)


def default_config(
    library: LibraryProfile, platform: PlatformSpec, cores: int | None = None
) -> tuple[int, int, int]:
    """The library-guideline static configuration ``(1, workers, rest)``."""
    return library.default_config(platform, cores)


def default_backend_space(
    platform: PlatformSpec,
    *,
    max_processes: int = 8,
    backends=("inline", "thread", "process"),
    queue_depths=QUEUE_DEPTH_CHOICES,
):
    """The full searched runtime space for ``platform``.

    ``(n, s, t)`` from the canonical :class:`~repro.tuning.space.ConfigSpace`,
    crossed with the execution backends and the queue-depth axis —
    everything :meth:`repro.core.config.RuntimeConfig.from_tuple` can
    round-trip into an engine configuration.
    """
    from repro.tuning.space import BackendSpace, ConfigSpace

    base = ConfigSpace.for_platform(platform, max_processes=max_processes)
    return BackendSpace(base, backends=backends, queue_depths=queue_depths)
