"""The "Default" baseline: official library CPU-setup guidelines.

Both DGL and PyG publish CPU best-practice guides (paper refs [24], [25])
prescribing a single training process with a small number of dataloader
workers and the remaining cores for compute.  The paper uses these as the
static ``Default`` column of Tables IV/V.
"""

from __future__ import annotations

from repro.platform.library import LibraryProfile
from repro.platform.spec import PlatformSpec

__all__ = ["default_config"]


def default_config(
    library: LibraryProfile, platform: PlatformSpec, cores: int | None = None
) -> tuple[int, int, int]:
    """The library-guideline static configuration ``(1, workers, rest)``."""
    return library.default_config(platform, cores)
