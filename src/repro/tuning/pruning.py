"""Search-space pruning tuner (paper Sec. VII-B, extension).

The paper's discussion considers strategic pruning as an alternative to
BayesOpt: measure coarsely, discard the unpromising region, refine — and
argues it degrades in higher-dimensional spaces.  We implement a
successive-halving pruner so that claim can be tested (see
``benchmarks/bench_ablation_pruning.py``):

1. probe an even lattice of the space,
2. keep the best ``keep_fraction`` of probed points,
3. next round probes unexplored neighbours of the survivors,
4. repeat until the budget is spent.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.tuning.search import Searcher, SearchResult
from repro.tuning.space import Config, ConfigSpace
from repro.utils.rng import derive_rng

__all__ = ["PruningSearch"]


class PruningSearch(Searcher):
    """Lattice-probe + successive-halving refinement."""

    name = "pruning"

    def __init__(self, initial_fraction: float = 0.4, keep_fraction: float = 0.3):
        if not 0 < initial_fraction <= 1 or not 0 < keep_fraction < 1:
            raise ValueError("fractions must be in (0, 1]")
        self.initial_fraction = float(initial_fraction)
        self.keep_fraction = float(keep_fraction)

    def run(
        self,
        objective: Callable[[Config], float],
        space: ConfigSpace,
        budget: int,
        seed: int = 0,
    ) -> SearchResult:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        rng = derive_rng(seed, "pruning")
        history: list[tuple[Config, float]] = []
        seen: set[Config] = set()

        def evaluate(cfg: Config) -> None:
            history.append((cfg, float(objective(cfg))))
            seen.add(cfg)

        # round 0: even lattice over the (sorted) config list
        n_init = max(2, min(budget, int(round(budget * self.initial_fraction))))
        stride = max(1, len(space) // n_init)
        offset = int(rng.integers(stride))
        for i in range(offset, len(space), stride):
            if len(history) >= budget:
                break
            evaluate(space.configs[i])

        # refinement rounds: expand neighbours of the surviving region
        while len(history) < budget:
            ranked = sorted(history, key=lambda cv: cv[1])
            survivors = [cfg for cfg, _ in ranked[: max(1, int(len(ranked) * self.keep_fraction))]]
            frontier = [
                nb
                for cfg in survivors
                for nb in space.neighbors(cfg)
                if nb not in seen
            ]
            if not frontier:
                # pruned region exhausted: random restart
                remaining = [c for c in space.configs if c not in seen]
                if not remaining:
                    break
                frontier = [remaining[int(rng.integers(len(remaining)))]]
            for cfg in frontier:
                if len(history) >= budget:
                    break
                if cfg not in seen:
                    evaluate(cfg)
        return self._finalize(history)
