"""The serving design space: what the autotuner searches online.

Training tuning searches ``(n, s, t, ...)``; serving has its own knob
set — pool ``workers``, micro-batcher ``max_batch`` / ``max_wait_ms``,
prediction-cache ``cache_entries``, the forward ``batch_mode``
(per-node vs shared-frontier batching) and the request->rank
``shard_policy`` (index-chunked vs size-binned vs work-stealing
placement) — all numerically identical but with different
overhead/latency trade-offs — with its own objective: not
epoch time but *SLO-aware latency/throughput*.  :class:`ServingSpace`
enumerates the cross product and is duck-compatible with
:class:`~repro.tuning.space.ConfigSpace` everywhere the searchers need
(``configs``/``features``/``index``/``neighbors``/``paper_budget``/
``random_config``), so the existing
:class:`~repro.core.autotuner.OnlineAutoTuner` drives it unchanged.

:func:`slo_objective` is the scalarisation: minimise inverse throughput,
multiplicatively penalised when the p99 latency overshoots the SLO —
a configuration that meets the SLO is ranked purely by throughput, one
that misses it must buy its way back with a lot of throughput.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "ServingConfig",
    "ServingSpace",
    "slo_objective",
    "BATCH_MODES",
    "SHARD_POLICIES",
    "ROUTE_POLICIES",
]

#: one point of the serving space
ServingConfig = tuple  # (workers, max_batch, max_wait_ms, cache_entries,
#  batch_mode, shard_policy, replicas, route_policy)

#: the categorical forward-strategy axis, in canonical order
BATCH_MODES = ("per_node", "frontier")

#: the categorical request->rank placement axis, in canonical order.
#: Mirrors :data:`repro.serve.frontier.SHARD_POLICIES` rather than
#: importing it — ``repro.tuning`` loads during ``repro.exec`` package
#: init, long before ``repro.serve`` can (serve.engine imports
#: exec.pool), so a real import here would be circular.  The serving
#: test suite asserts the two tuples stay identical.
SHARD_POLICIES = ("chunk", "size_binned", "steal")

#: the categorical front-end routing axis, in canonical order.  Mirrors
#: :data:`repro.serve.cluster.ROUTE_POLICIES` for the same import-cycle
#: reason as :data:`SHARD_POLICIES` above; the serving test suite
#: asserts the two tuples stay identical.
ROUTE_POLICIES = ("round_robin", "consistent_hash", "cache_affinity")


def _axis(values, name, *, allow_zero=False, numeric=float):
    out = tuple(sorted({numeric(v) for v in values}))
    if not out:
        raise ValueError(f"{name} must be non-empty")
    lo = 0 if allow_zero else 1
    if any(v < lo for v in out):
        raise ValueError(f"{name} values must be >= {lo}, got {out}")
    return out


def _categorical_axis(values, name, canonical) -> tuple:
    seen = {str(v) for v in values}
    if not seen:
        raise ValueError(f"{name} must be non-empty")
    unknown = seen - set(canonical)
    if unknown:
        raise ValueError(
            f"{name} values must be among {canonical}, got {sorted(unknown)}"
        )
    # canonical order, deduped
    return tuple(m for m in canonical if m in seen)


class ServingSpace:
    """Finite enumeration of serving configurations.

    Points are ``(workers, max_batch, max_wait_ms, cache_entries,
    batch_mode, shard_policy, replicas, route_policy)``.  ``workers``
    is the pool size the
    inference engine runs (`1` works inline-equivalently but still
    exercises the pool path); ``cache_entries`` may include ``0`` —
    caching disabled — so the tuner can learn whether the workload's
    skew pays for a cache at all; ``batch_mode`` is the categorical
    forward-strategy axis (``"per_node"`` vs ``"frontier"``) and
    ``shard_policy`` the categorical request->rank placement axis
    (``"chunk"`` / ``"size_binned"`` / ``"steal"``) — both are
    bit-identical in predictions, so the tuner searches them purely on
    latency/throughput.  ``replicas`` and ``route_policy`` open the
    horizontal dimension: how many supervised engine replicas the
    serving cluster runs and how the front-end router spreads nodes
    over them (``"round_robin"`` / ``"consistent_hash"`` /
    ``"cache_affinity"``) — also prediction-identical by the per-node
    RNG contract, so the tuner trades them purely on throughput, tail
    latency and cache warmth.
    """

    def __init__(
        self,
        *,
        workers=(1, 2),
        max_batches=(1, 2, 4, 8, 16),
        max_waits_ms=(0.5, 2.0, 8.0),
        cache_sizes=(0, 256, 4096),
        batch_modes=BATCH_MODES,
        shard_policies=SHARD_POLICIES,
        replicas=(1,),
        route_policies=("round_robin",),
    ):
        self.workers = _axis(workers, "workers", numeric=int)
        self.max_batches = _axis(max_batches, "max_batches", numeric=int)
        self.max_waits_ms = _axis(max_waits_ms, "max_waits_ms", allow_zero=True)
        self.cache_sizes = _axis(cache_sizes, "cache_sizes", allow_zero=True, numeric=int)
        self.batch_modes = _categorical_axis(batch_modes, "batch_modes", BATCH_MODES)
        self.shard_policies = _categorical_axis(
            shard_policies, "shard_policies", SHARD_POLICIES
        )
        self.replicas = _axis(replicas, "replicas", numeric=int)
        self.route_policies = _categorical_axis(
            route_policies, "route_policies", ROUTE_POLICIES
        )
        self.configs: list[ServingConfig] = [
            (w, b, wait, c, m, p, n, r)
            for w in self.workers
            for b in self.max_batches
            for wait in self.max_waits_ms
            for c in self.cache_sizes
            for m in self.batch_modes
            for p in self.shard_policies
            for n in self.replicas
            for r in self.route_policies
        ]
        self._index = {cfg: i for i, cfg in enumerate(self.configs)}
        self._axes = (
            self.workers,
            self.max_batches,
            self.max_waits_ms,
            self.cache_sizes,
            self.batch_modes,
            self.shard_policies,
            self.replicas,
            self.route_policies,
        )

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.configs)

    def __iter__(self):
        return iter(self.configs)

    def __contains__(self, cfg) -> bool:
        return tuple(cfg) in self._index

    def index(self, cfg: ServingConfig) -> int:
        return self._index[tuple(cfg)]

    def paper_budget(self, fraction: float = 0.05) -> int:
        """Search budget covering ``fraction`` of the space (cf. ConfigSpace)."""
        if not 0 < fraction <= 1:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        return max(3, int(round(fraction * len(self))))

    # ------------------------------------------------------------------
    def features(self) -> np.ndarray:
        """Normalised ``[0, 1]^8`` surrogate features, one row per config.

        The numeric axes are log-scaled (counts and waits both span
        orders of magnitude; latency responds to their ratios) with
        ``+1`` shifts so the zero-valued points (no wait, no cache) stay
        finite.  The categorical batch-mode and shard-policy axes map to
        their position within the axis (0 when the axis is a single
        point).
        """

        def norm(value, values):
            lo = np.log2(min(values) + 1.0)
            hi = np.log2(max(values) + 1.0)
            if hi == lo:
                return 0.0
            return (np.log2(value + 1.0) - lo) / (hi - lo)

        feats = np.zeros((len(self.configs), 8), dtype=np.float64)
        for i, cfg in enumerate(self.configs):
            for j, (value, values) in enumerate(zip(cfg[:4], self._axes[:4])):
                feats[i, j] = norm(value, values)
            feats[i, 6] = norm(cfg[6], self.replicas)
            for j, values in (
                (4, self.batch_modes),
                (5, self.shard_policies),
                (7, self.route_policies),
            ):
                feats[i, j] = (
                    values.index(cfg[j]) / (len(values) - 1) if len(values) > 1 else 0.0
                )
        return feats

    def neighbors(self, cfg: ServingConfig) -> list[ServingConfig]:
        """One-step moves along each axis (simulated-annealing moves)."""
        if cfg not in self:
            raise KeyError(f"{cfg} not in space")
        out: list[ServingConfig] = []
        cfg = tuple(cfg)
        for j, values in enumerate(self._axes):
            k = values.index(cfg[j])
            for dk in (-1, 1):
                if 0 <= k + dk < len(values):
                    cand = list(cfg)
                    cand[j] = values[k + dk]
                    out.append(tuple(cand))
        return out

    def random_config(self, rng: np.random.Generator) -> ServingConfig:
        return self.configs[int(rng.integers(len(self.configs)))]


def slo_objective(report, *, slo_ms: float, penalty: float = 10.0) -> float:
    """Scalar score (lower is better) for one serving measurement.

    ``(1 + penalty · relative p99 overshoot) / throughput`` — inside the
    SLO this is pure inverse throughput; every percent of p99 overshoot
    multiplies the score, so the BO surrogate learns a sharp cliff at
    the deadline instead of trading tail latency away linearly.
    """
    if slo_ms <= 0:
        raise ValueError(f"slo_ms must be > 0, got {slo_ms}")
    if penalty <= 0:
        raise ValueError(f"penalty must be > 0, got {penalty}")
    overshoot = max(0.0, report.p99_ms / float(slo_ms) - 1.0)
    return (1.0 + float(penalty) * overshoot) / max(report.throughput_rps, 1e-9)
