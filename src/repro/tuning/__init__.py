"""Configuration search: the design space and the baseline search
algorithms ARGO's auto-tuner is compared against (paper Sec. VI-D).

* :class:`ConfigSpace` — every valid ``(n_processes, sampling_cores,
  training_cores)`` triple on a platform;
* :class:`ExhaustiveSearch` — the oracle (726-point sweep on 112 cores);
* :class:`RandomSearch` — uniform random baseline;
* :class:`SimulatedAnnealing` — the paper's random-search baseline;
* :func:`default_config` — the library CPU-guideline static setup.
"""

from repro.tuning.space import BackendSpace, ConfigSpace
from repro.tuning.serving import ServingSpace, slo_objective
from repro.tuning.search import Searcher, SearchResult, ExhaustiveSearch, RandomSearch
from repro.tuning.anneal import SimulatedAnnealing
from repro.tuning.pruning import PruningSearch
from repro.tuning.defaults import (
    DEFAULT_QUEUE_DEPTH,
    QUEUE_DEPTH_CHOICES,
    default_backend_space,
    default_config,
)

__all__ = [
    "BackendSpace",
    "ConfigSpace",
    "ServingSpace",
    "slo_objective",
    "Searcher",
    "SearchResult",
    "ExhaustiveSearch",
    "RandomSearch",
    "SimulatedAnnealing",
    "PruningSearch",
    "default_config",
    "default_backend_space",
    "DEFAULT_QUEUE_DEPTH",
    "QUEUE_DEPTH_CHOICES",
]
