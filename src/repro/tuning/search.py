"""Search-algorithm baselines and the common result record.

All searchers share the interface ``run(objective, space, budget, seed)``
where ``objective(config) -> observed epoch seconds`` (one full training
epoch per evaluation, as in the paper's online setting).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.tuning.space import Config, ConfigSpace
from repro.utils.rng import derive_rng

__all__ = ["SearchResult", "Searcher", "ExhaustiveSearch", "RandomSearch"]


@dataclass
class SearchResult:
    """Outcome of a configuration search."""

    best_config: Config
    best_observed: float
    num_evaluations: int
    history: list[tuple[Config, float]] = field(default_factory=list)

    @property
    def observations(self) -> list[float]:
        return [v for _, v in self.history]

    def best_so_far(self) -> list[float]:
        """Running minimum over the history (convergence curves)."""
        out, cur = [], np.inf
        for _, v in self.history:
            cur = min(cur, v)
            out.append(cur)
        return out


class Searcher:
    """Base class: bookkeeping shared by all search strategies."""

    name = "base"

    def run(
        self,
        objective: Callable[[Config], float],
        space: ConfigSpace,
        budget: int,
        seed: int = 0,
    ) -> SearchResult:
        raise NotImplementedError

    @staticmethod
    def _finalize(history: list[tuple[Config, float]]) -> SearchResult:
        if not history:
            raise ValueError("search produced no evaluations")
        best_idx = int(np.argmin([v for _, v in history]))
        cfg, val = history[best_idx]
        return SearchResult(
            best_config=cfg,
            best_observed=val,
            num_evaluations=len(history),
            history=history,
        )


class ExhaustiveSearch(Searcher):
    """Evaluate every configuration (the paper's oracle baseline).

    ``budget`` is ignored — the whole space is swept, which on a real
    machine is the "prohibitively expensive" 726-epoch sweep the paper
    warns about.
    """

    name = "exhaustive"

    def run(self, objective, space, budget: int = 0, seed: int = 0) -> SearchResult:
        history = [(cfg, float(objective(cfg))) for cfg in space]
        return self._finalize(history)


class RandomSearch(Searcher):
    """Uniform random sampling without replacement."""

    name = "random"

    def run(self, objective, space, budget: int, seed: int = 0) -> SearchResult:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        rng = derive_rng(seed, "random-search")
        order = rng.permutation(len(space))[: min(budget, len(space))]
        history = [(space.configs[i], float(objective(space.configs[i]))) for i in order]
        return self._finalize(history)
