"""Simulated annealing over the configuration space.

The paper's strongest non-learning baseline (Tables IV/V): a random walk
through neighbouring configurations that always accepts improvements and
accepts regressions with probability ``exp(-delta / T)`` under a
geometric cooling schedule.  Matched to the auto-tuner's budget so the
comparison isolates *search intelligence*, not evaluation count.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.tuning.search import Searcher, SearchResult
from repro.tuning.space import Config, ConfigSpace
from repro.utils.rng import derive_rng

__all__ = ["SimulatedAnnealing"]


class SimulatedAnnealing(Searcher):
    """Geometric-cooling simulated annealing.

    Parameters
    ----------
    t_initial:
        Initial temperature as a *fraction of the first observation* —
        epoch times vary by orders of magnitude across tasks, so an
        absolute temperature would be meaningless.
    cooling:
        Multiplicative temperature decay per step.
    restart_prob:
        Small probability of jumping to a uniformly random configuration
        (standard diversification against local minima).
    """

    name = "simulated-annealing"

    def __init__(self, t_initial: float = 0.3, cooling: float = 0.85, restart_prob: float = 0.08):
        if t_initial <= 0 or not 0 < cooling < 1 or not 0 <= restart_prob < 1:
            raise ValueError("invalid annealing hyperparameters")
        self.t_initial = float(t_initial)
        self.cooling = float(cooling)
        self.restart_prob = float(restart_prob)

    def run(
        self,
        objective: Callable[[Config], float],
        space: ConfigSpace,
        budget: int,
        seed: int = 0,
    ) -> SearchResult:
        if budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        rng = derive_rng(seed, "sim-anneal")
        current = space.random_config(rng)
        current_val = float(objective(current))
        history = [(current, current_val)]
        temperature = self.t_initial * current_val
        for _ in range(budget - 1):
            if rng.random() < self.restart_prob:
                candidate = space.random_config(rng)
            else:
                moves = space.neighbors(current)
                candidate = moves[int(rng.integers(len(moves)))] if moves else space.random_config(rng)
            cand_val = float(objective(candidate))
            history.append((candidate, cand_val))
            delta = cand_val - current_val
            if delta <= 0 or rng.random() < np.exp(-delta / max(temperature, 1e-12)):
                current, current_val = candidate, cand_val
            temperature *= self.cooling
        return self._finalize(history)
