"""Command-line interface: regenerate paper experiments without pytest.

Usage::

    python -m repro.cli list
    python -m repro.cli fig1 [--dataset ogbn-products] [--platform icelake]
    python -m repro.cli fig6 | fig7 | fig8 | table4 | table5 | table6
    python -m repro.cli landscape --task shadow-gcn --dataset reddit

Each command prints the reproduced artefact to stdout (the benchmark
suite additionally asserts the paper's shapes; the CLI is for quick
interactive inspection).
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.figures import (
    fig1_baseline_scalability,
    fig6_workload_bandwidth,
    fig7_landscape,
    fig8_argo_scalability,
)
from repro.experiments.reporting import render_heatmap, render_series, render_table
from repro.experiments.setups import DATASET_NAMES, ExperimentSetup
from repro.experiments.tables import table4_5_row, table6_search_budgets

__all__ = ["main"]


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", default="ogbn-products", choices=DATASET_NAMES)
    p.add_argument("--platform", default="icelake", choices=["icelake", "sapphire"])
    p.add_argument("--library", default="dgl", choices=["dgl", "pyg"])
    p.add_argument("--task", default="neighbor-sage", choices=["neighbor-sage", "shadow-gcn"])


def cmd_fig1(args) -> str:
    data = fig1_baseline_scalability(args.dataset, args.platform)
    return render_series(data["cores"], data["speedup"], title="Fig 1 — baseline scalability")


def cmd_fig6(args) -> str:
    rows = fig6_workload_bandwidth(args.dataset, args.platform)
    return render_table(
        ["processes", "epoch edges", "bandwidth GB/s", "epoch time s"],
        [[r["processes"], r["epoch_edges"], r["bandwidth_gbs"], r["epoch_time"]] for r in rows],
        title="Fig 6 — workload & bandwidth vs processes",
    )


def cmd_fig8(args) -> str:
    data = fig8_argo_scalability(args.dataset, args.platform)
    return render_series(
        data["cores"], data["series"], title=f"Fig 8 — ARGO scalability on {args.platform}"
    )


def cmd_landscape(args) -> str:
    res = fig7_landscape(ExperimentSetup(args.task, args.dataset, args.platform, args.library))
    return render_heatmap(
        res["grid"], title=f"Fig 7 — {res['setup']} (opt={res['best']})"
    )


def _table_rows(library: str) -> str:
    rows = [
        table4_5_row(ExperimentSetup(task, ds, plat, library))
        for plat in ("icelake", "sapphire")
        for task in ("neighbor-sage", "shadow-gcn")
        for ds in DATASET_NAMES
    ]
    return render_table(
        ["setup", "Exhaustive", "Default", "(x)", "SimAnneal", "(x)", "AutoTuner", "(x)"],
        [
            [
                r["setup"],
                r["exhaustive"],
                r["default"],
                r["default_ratio"],
                r["sim_anneal_mean"],
                r["sim_anneal_ratio"],
                r["auto_tuner"],
                r["auto_tuner_ratio"],
            ]
            for r in rows
        ],
        title=f"Table {'IV' if library == 'dgl' else 'V'} — configuration quality ({library.upper()})",
    )


def cmd_table4(args) -> str:
    return _table_rows("dgl")


def cmd_table5(args) -> str:
    return _table_rows("pyg")


def cmd_table6(args) -> str:
    rows = table6_search_budgets()
    return render_table(
        ["platform", "task", "space", "paper space", "budget", "paper budget"],
        [
            [r["platform"], r["task"], r["space_size"], r["paper_space_size"], r["budget"], r["paper_budget"]]
            for r in rows
        ],
        title="Table VI — search budgets",
    )


COMMANDS = {
    "fig1": cmd_fig1,
    "fig6": cmd_fig6,
    "fig8": cmd_fig8,
    "landscape": cmd_landscape,
    "table4": cmd_table4,
    "table5": cmd_table5,
    "table6": cmd_table6,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiment commands")
    for name in COMMANDS:
        p = sub.add_parser(name)
        _add_common(p)
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("available commands:", ", ".join(["list", *COMMANDS]))
        return 0
    print(COMMANDS[args.command](args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
