"""Command-line interface: regenerate paper experiments without pytest.

Usage::

    python -m repro.cli list
    python -m repro.cli fig1 [--dataset ogbn-products] [--platform icelake]
    python -m repro.cli fig6 | fig7 | fig8 | table4 | table5 | table6
    python -m repro.cli landscape --task shadow-gcn --dataset reddit
    python -m repro.cli train --backend process --processes 2 --epochs 2

Each command prints the reproduced artefact to stdout (the benchmark
suite additionally asserts the paper's shapes; the CLI is for quick
interactive inspection).  ``train`` runs the *real* Multi-Process Engine
on a local synthetic instance under any execution backend — it is also
the CI smoke test for the fork-sensitive ``process`` backend.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.figures import (
    fig1_baseline_scalability,
    fig6_workload_bandwidth,
    fig7_landscape,
    fig8_argo_scalability,
)
from repro.experiments.reporting import render_heatmap, render_series, render_table
from repro.experiments.setups import DATASET_NAMES, ExperimentSetup
from repro.experiments.tables import table4_5_row, table6_search_budgets
from repro.exec import available_backends

__all__ = ["main"]


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", default="ogbn-products", choices=DATASET_NAMES)
    p.add_argument("--platform", default="icelake", choices=["icelake", "sapphire"])
    p.add_argument("--library", default="dgl", choices=["dgl", "pyg"])
    p.add_argument("--task", default="neighbor-sage", choices=["neighbor-sage", "shadow-gcn"])


def cmd_fig1(args) -> str:
    data = fig1_baseline_scalability(args.dataset, args.platform)
    return render_series(data["cores"], data["speedup"], title="Fig 1 — baseline scalability")


def cmd_fig6(args) -> str:
    rows = fig6_workload_bandwidth(args.dataset, args.platform)
    return render_table(
        ["processes", "epoch edges", "bandwidth GB/s", "epoch time s"],
        [[r["processes"], r["epoch_edges"], r["bandwidth_gbs"], r["epoch_time"]] for r in rows],
        title="Fig 6 — workload & bandwidth vs processes",
    )


def cmd_fig8(args) -> str:
    data = fig8_argo_scalability(args.dataset, args.platform)
    return render_series(
        data["cores"], data["series"], title=f"Fig 8 — ARGO scalability on {args.platform}"
    )


def cmd_landscape(args) -> str:
    res = fig7_landscape(ExperimentSetup(args.task, args.dataset, args.platform, args.library))
    return render_heatmap(
        res["grid"], title=f"Fig 7 — {res['setup']} (opt={res['best']})"
    )


def _table_rows(library: str) -> str:
    rows = [
        table4_5_row(ExperimentSetup(task, ds, plat, library))
        for plat in ("icelake", "sapphire")
        for task in ("neighbor-sage", "shadow-gcn")
        for ds in DATASET_NAMES
    ]
    return render_table(
        ["setup", "Exhaustive", "Default", "(x)", "SimAnneal", "(x)", "AutoTuner", "(x)"],
        [
            [
                r["setup"],
                r["exhaustive"],
                r["default"],
                r["default_ratio"],
                r["sim_anneal_mean"],
                r["sim_anneal_ratio"],
                r["auto_tuner"],
                r["auto_tuner_ratio"],
            ]
            for r in rows
        ],
        title=f"Table {'IV' if library == 'dgl' else 'V'} — configuration quality ({library.upper()})",
    )


def cmd_table4(args) -> str:
    return _table_rows("dgl")


def cmd_table5(args) -> str:
    return _table_rows("pyg")


def cmd_table6(args) -> str:
    rows = table6_search_budgets()
    return render_table(
        ["platform", "task", "space", "paper space", "budget", "paper budget"],
        [
            [r["platform"], r["task"], r["space_size"], r["paper_space_size"], r["budget"], r["paper_budget"]]
            for r in rows
        ],
        title="Table VI — search budgets",
    )


def cmd_train(args) -> str:
    """Train the real engine under any execution backend and report."""
    from repro.core.engine import MultiProcessEngine
    from repro.gnn.models import make_task
    from repro.graph.datasets import load_dataset

    ds = load_dataset(args.dataset, seed=args.seed, scale_override=args.scale)
    sampler, model = make_task(args.task, ds.layer_dims(args.layers), seed=args.seed)
    backend_options = {"timeout": args.timeout} if args.backend == "process" else None
    engine = MultiProcessEngine(
        ds,
        sampler,
        model,
        num_processes=args.processes,
        global_batch_size=args.batch,
        backend=args.backend,
        backend_options=backend_options,
        seed=args.seed,
    )
    try:
        engine.train(args.epochs)
        acc = engine.evaluate()
    finally:
        engine.shutdown()
    rows = [
        [e.epoch, f"{e.mean_loss:.4f}", f"{e.epoch_time:.3f}", e.sampled_edges]
        for e in engine.history.epochs
    ]
    table = render_table(
        ["epoch", "mean loss", "time s", "edges"],
        rows,
        title=(
            f"train — {args.task} on {args.dataset} (scale 2^{args.scale}), "
            f"backend={args.backend}, n={args.processes}"
        ),
    )
    return f"{table}\nfinal validation accuracy: {acc:.3f}"


COMMANDS = {
    "fig1": cmd_fig1,
    "fig6": cmd_fig6,
    "fig8": cmd_fig8,
    "landscape": cmd_landscape,
    "table4": cmd_table4,
    "table5": cmd_table5,
    "table6": cmd_table6,
    "train": cmd_train,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiment commands")
    for name in COMMANDS:
        p = sub.add_parser(name)
        _add_common(p)
        if name == "train":
            p.add_argument("--backend", default="inline", choices=available_backends())
            p.add_argument("--processes", type=int, default=2)
            p.add_argument("--epochs", type=int, default=1)
            p.add_argument("--batch", type=int, default=128)
            p.add_argument("--scale", type=int, default=10)
            p.add_argument("--layers", type=int, default=2)
            p.add_argument("--seed", type=int, default=0)
            p.add_argument(
                "--timeout", type=float, default=120.0,
                help="per-epoch worker deadline for the process backend (s)",
            )
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("available commands:", ", ".join(["list", *COMMANDS]))
        return 0
    print(COMMANDS[args.command](args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
