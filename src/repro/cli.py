"""Command-line interface: regenerate paper experiments without pytest.

Usage::

    python -m repro.cli list
    python -m repro.cli fig1 [--dataset ogbn-products] [--platform icelake]
    python -m repro.cli fig6 | fig7 | fig8 | table4 | table5 | table6
    python -m repro.cli landscape --task shadow-gcn --dataset reddit
    python -m repro.cli train --backend process --processes 2 --epochs 2
    python -m repro.cli train --backend process --prefetch --samplers 2
    python -m repro.cli train --backend process --no-persistent  # respawn/epoch
    python -m repro.cli serve-bench --mode inline --requests 256
    python -m repro.cli serve-bench --mode pool --serve-workers 2 --slo-ms 20
    python -m repro.cli serve-bench --batch-mode frontier --queue-limit 64
    python -m repro.cli serve-bench --mode pool --swaps 2  # hot snapshot reloads
    python -m repro.cli serve-bench --replicas 2 --route-policy cache_affinity
    python -m repro.cli serve-bench --deltas 8 --staleness-budget 1  # live graph
    python -m repro.cli serve-bench --report-json report.json
    python -m repro.cli serve-bench --trace trace.json --metrics-json metrics.json
    python -m repro.cli trace trace.json  # summarize an exported trace

Each command prints the reproduced artefact to stdout (the benchmark
suite additionally asserts the paper's shapes; the CLI is for quick
interactive inspection).  ``train`` runs the *real* Multi-Process Engine
on a local synthetic instance under any execution backend — it is also
the CI smoke test for the fork-sensitive ``process`` backend.
``serve-bench`` trains briefly, freezes a model snapshot and drives the
online inference runtime (micro-batching, prediction cache, inline or
persistent-pool execution) through a synthetic Zipf/Poisson workload,
reporting throughput, p50/p95/p99 latency and cache hit rate.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.experiments.figures import (
    fig1_baseline_scalability,
    fig6_workload_bandwidth,
    fig7_landscape,
    fig8_argo_scalability,
)
from repro.experiments.reporting import render_heatmap, render_series, render_table
from repro.experiments.setups import DATASET_NAMES, ExperimentSetup
from repro.experiments.tables import table4_5_row, table6_search_budgets
from repro.exec import available_backends
from repro.tuning.defaults import DEFAULT_QUEUE_DEPTH

__all__ = ["main"]


def _positive_int(value: str) -> int:
    """argparse type for count arguments: fail in the parser, not the engine."""
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from None
    if n < 1:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {n}")
    return n


def _nonnegative_int(value: str) -> int:
    """argparse type for budgets where 0 means "disabled" (e.g. cache size)."""
    try:
        n = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {value!r}") from None
    if n < 0:
        raise argparse.ArgumentTypeError(f"expected a non-negative integer, got {n}")
    return n


def _backend_name(name: str) -> str:
    """argparse type for ``--backend``: validate against the exec registry.

    Failing up front (with the registered names listed) beats the engine
    blowing up deep inside backend construction; accepting any registered
    string — rather than a frozen ``choices`` tuple — keeps third-party
    backends selectable.
    """
    key = str(name).lower()
    if key not in available_backends():
        raise argparse.ArgumentTypeError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(available_backends())}"
        )
    return key


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("--dataset", default="ogbn-products", choices=DATASET_NAMES)
    p.add_argument("--platform", default="icelake", choices=["icelake", "sapphire"])
    p.add_argument("--library", default="dgl", choices=["dgl", "pyg"])
    p.add_argument("--task", default="neighbor-sage", choices=["neighbor-sage", "shadow-gcn"])


def cmd_fig1(args) -> str:
    data = fig1_baseline_scalability(args.dataset, args.platform)
    return render_series(data["cores"], data["speedup"], title="Fig 1 — baseline scalability")


def cmd_fig6(args) -> str:
    rows = fig6_workload_bandwidth(args.dataset, args.platform)
    return render_table(
        ["processes", "epoch edges", "bandwidth GB/s", "epoch time s"],
        [[r["processes"], r["epoch_edges"], r["bandwidth_gbs"], r["epoch_time"]] for r in rows],
        title="Fig 6 — workload & bandwidth vs processes",
    )


def cmd_fig8(args) -> str:
    data = fig8_argo_scalability(args.dataset, args.platform)
    return render_series(
        data["cores"], data["series"], title=f"Fig 8 — ARGO scalability on {args.platform}"
    )


def cmd_landscape(args) -> str:
    res = fig7_landscape(ExperimentSetup(args.task, args.dataset, args.platform, args.library))
    return render_heatmap(
        res["grid"], title=f"Fig 7 — {res['setup']} (opt={res['best']})"
    )


def _table_rows(library: str) -> str:
    rows = [
        table4_5_row(ExperimentSetup(task, ds, plat, library))
        for plat in ("icelake", "sapphire")
        for task in ("neighbor-sage", "shadow-gcn")
        for ds in DATASET_NAMES
    ]
    return render_table(
        ["setup", "Exhaustive", "Default", "(x)", "SimAnneal", "(x)", "AutoTuner", "(x)"],
        [
            [
                r["setup"],
                r["exhaustive"],
                r["default"],
                r["default_ratio"],
                r["sim_anneal_mean"],
                r["sim_anneal_ratio"],
                r["auto_tuner"],
                r["auto_tuner_ratio"],
            ]
            for r in rows
        ],
        title=f"Table {'IV' if library == 'dgl' else 'V'} — configuration quality ({library.upper()})",
    )


def cmd_table4(args) -> str:
    return _table_rows("dgl")


def cmd_table5(args) -> str:
    return _table_rows("pyg")


def cmd_table6(args) -> str:
    rows = table6_search_budgets()
    return render_table(
        ["platform", "task", "space", "paper space", "budget", "paper budget"],
        [
            [r["platform"], r["task"], r["space_size"], r["paper_space_size"], r["budget"], r["paper_budget"]]
            for r in rows
        ],
        title="Table VI — search budgets",
    )


def cmd_train(args) -> str:
    """Train the real engine under any execution backend and report."""
    from repro.core.engine import MultiProcessEngine
    from repro.gnn.models import make_task
    from repro.graph.datasets import load_dataset

    ds = load_dataset(args.dataset, seed=args.seed, scale_override=args.scale)
    sampler, model = make_task(args.task, ds.layer_dims(args.layers), seed=args.seed)
    backend_options = {"timeout": args.timeout} if args.backend == "process" else None
    persistent = True if args.persistent is None else args.persistent
    engine = MultiProcessEngine(
        ds,
        sampler,
        model,
        num_processes=args.processes,
        global_batch_size=args.batch,
        backend=args.backend,
        backend_options=backend_options,
        seed=args.seed,
        prefetch=args.prefetch,
        queue_depth=args.queue_depth,
        sampler_workers=args.samplers,
        persistent=persistent,
    )
    try:
        engine.train(args.epochs)
        acc = engine.evaluate()
    finally:
        engine.shutdown()
    show_pool = args.backend == "process" and persistent
    rows = [
        [
            e.epoch,
            f"{e.mean_loss:.4f}",
            f"{e.epoch_time:.3f}",
            f"{e.launch_time:.3f}",
            f"{e.sample_wait:.3f}",
            f"{e.compute_time:.3f}",
            e.sampled_edges,
        ]
        + ([e.pool_launches, e.pool_parked] if show_pool else [])
        for e in engine.history.epochs
    ]
    overlap = f", prefetch(s={args.samplers}, q={args.queue_depth})" if args.prefetch else ""
    mode = "" if args.backend != "process" else (
        ", persistent" if persistent else ", respawn"
    )
    headers = ["epoch", "mean loss", "time s", "launch s", "sample wait s", "compute s", "edges"]
    if show_pool:
        # persistent-pool lifecycle diagnostics (ROADMAP PR 3 follow-up):
        # cumulative worker forks and workers parked idle after a shrink
        headers += ["launches", "parked"]
    table = render_table(
        headers,
        rows,
        title=(
            f"train — {args.task} on {args.dataset} (scale 2^{args.scale}), "
            f"backend={args.backend}{mode}, n={args.processes}{overlap}"
        ),
    )
    return f"{table}\nfinal validation accuracy: {acc:.3f}"


def _serve_bench_cluster(args, ds, snapshot) -> str:
    """The ``--replicas > 1`` branch: drive a multi-replica cluster.

    Same virtual-clock workload as the single-engine path, but the node
    stream and arrival epochs are drawn once at the edge and routed over
    N supervised replicas; ``--swaps`` become *rolling* hot-swaps (one
    replica drains at a time; every replica's ``pool.launches`` must
    stay flat) and the run ends with a greppable ``cluster:`` summary
    line CI asserts on.
    """
    from repro.serve import ServingCluster, run_cluster_workload
    from repro.serve.workload import make_scenario, merge_reports
    from repro.tuning.serving import slo_objective
    from repro.utils.rng import derive_rng

    for flag, on in (
        ("--deltas", args.deltas),
        ("--closed", args.closed),
        ("--trace", args.trace is not None),
    ):
        if on:
            raise SystemExit(
                f"error: {flag} is not supported with --replicas > 1 "
                f"(the cluster path is open-loop and untraced)"
            )
    catalog = ds.val_idx
    if len(catalog) == 0:
        catalog = np.arange(ds.num_nodes, dtype=np.int64)
    swap_lines = []
    with ServingCluster(
        snapshot,
        ds,
        replicas=args.replicas,
        route_policy=args.route_policy,
        mode=args.mode,
        batch_mode=args.batch_mode,
        shard_policy=args.shard_policy,
        workers=args.serve_workers,
        cache_entries=args.cache_entries,
        seed=args.seed,
        timeout=args.timeout,
        staleness_budget=args.staleness_budget,
    ) as cluster:
        cluster.warm_up()
        segments = min(args.swaps + 1, args.requests)
        seg_requests = [args.requests // segments] * segments
        seg_requests[-1] += args.requests - sum(seg_requests)
        reports = []
        refused = 0
        for seg, n_req in enumerate(seg_requests):
            node_sequence = None
            if args.scenario != "zipf":
                node_sequence = make_scenario(
                    args.scenario, catalog, n_req, alpha=args.zipf,
                    graph=ds.graph, rng=derive_rng(args.seed + seg, "serve-scenario"),
                )
            if seg > 0:
                # rolling hot-swap: one replica drains, reloads through
                # its ParamStore channel and is probed (forcing the lazy
                # weight republish) before the next replica drains
                for record in cluster.rolling_reload(
                    snapshot, probe_nodes=catalog[:1]
                ):
                    swap_lines.append(
                        "swap {}: replica {} generation={}, launches={}".format(
                            seg,
                            record["replica"],
                            record["generation"],
                            record["launches"] if args.mode == "pool" else "(inline)",
                        )
                    )
            result = run_cluster_workload(
                cluster,
                num_requests=n_req,
                rate_rps=args.rate,
                zipf_alpha=args.zipf,
                max_batch=args.max_batch,
                max_wait_ms=args.max_wait_ms,
                queue_limit=args.queue_limit,
                node_sequence=node_sequence,
                seed=args.seed + seg,
            )
            reports.append(result.report)
            refused += result.refused
        # segments are sequential runs of the same cluster, so the
        # cross-segment fold is the sequential merge (each segment's
        # report is already the concurrent cross-replica fold)
        report = merge_reports(reports)
        cluster_line = (
            "cluster: replicas={}, policy={}, launches=[{}], restarts=[{}], "
            "reroutes={}, refused={}".format(
                len(cluster.replicas),
                cluster.route_policy,
                ", ".join(str(n) for n in cluster.launches()),
                ", ".join(str(h.restarts) for h in cluster.replicas),
                cluster.router.reroutes,
                refused,
            )
        )
        metrics_doc = (
            cluster.metrics_snapshot() if args.metrics_json is not None else None
        )
    loop = f"open({args.rate:g} rps)"
    rows = [
        ["requests", report.requests],
        ["throughput req/s", f"{report.throughput_rps:.1f}"],
        ["latency p50 ms", f"{report.p50_ms:.2f}"],
        ["latency p95 ms", f"{report.p95_ms:.2f}"],
        ["latency p99 ms", f"{report.p99_ms:.2f}"],
        ["latency mean ms", f"{report.mean_ms:.2f}"],
        ["mean batch", f"{report.mean_batch:.2f}"],
        ["cache hit rate", f"{report.cache.hit_rate:.3f}"],
        ["cache hits/misses/evictions",
         f"{report.cache.hits}/{report.cache.misses}/{report.cache.evictions}"],
        ["service sample/merge/forward/cache ms",
         f"{report.sample_ms:.1f}/{report.merge_ms:.1f}"
         f"/{report.forward_ms:.1f}/{report.cache_ms:.1f}"],
        ["rank busy ms",
         "/".join(f"{b:.1f}" for b in report.rank_busy_ms) or "-"],
        ["busy imbalance (max/mean)", f"{report.imbalance:.3f}"],
    ]
    if args.queue_limit is not None:
        rows.append(
            ["shed (queue limit)",
             f"{report.shed_count} (max queue {report.max_queue})"]
        )
    table = render_table(
        ["metric", "value"],
        rows,
        title=(
            f"serve-bench — {args.task} on {args.dataset} (scale 2^{args.scale}), "
            f"cluster x{args.replicas}/{args.route_policy}, "
            f"mode={args.mode}/{args.batch_mode}, {loop}, "
            f"{args.scenario}(s={args.zipf:g}), "
            f"batch<={args.max_batch}, wait<={args.max_wait_ms:g}ms, "
            f"cache={args.cache_entries}"
        ),
    )
    lines = [table, cluster_line, *swap_lines]
    if args.slo_ms is not None:
        lines.append(
            f"SLO {args.slo_ms:g} ms: p99 "
            f"{'MET' if report.p99_ms <= args.slo_ms else 'MISSED'} "
            f"(attainment {report.slo_attainment(args.slo_ms):.3f}, "
            f"objective {slo_objective(report, slo_ms=args.slo_ms):.6f})"
        )
    if args.report_json is not None:
        doc = report.as_dict(slo_ms=args.slo_ms)
        doc["bench"] = {
            "dataset": args.dataset,
            "task": args.task,
            "scale": args.scale,
            "mode": args.mode,
            "batch_mode": args.batch_mode,
            "workers": args.serve_workers if args.mode == "pool" else 1,
            "shard_policy": args.shard_policy,
            "replicas": args.replicas,
            "route_policy": args.route_policy,
            "scenario": args.scenario,
            "swaps": args.swaps,
            "seed": args.seed,
        }
        with open(args.report_json, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        lines.append(f"report-json: wrote {args.report_json}")
    if metrics_doc is not None:
        with open(args.metrics_json, "w") as fh:
            json.dump(metrics_doc, fh, indent=2)
            fh.write("\n")
        lines.append(f"metrics-json: wrote {args.metrics_json}")
    return "\n".join(lines)


def cmd_serve_bench(args) -> str:
    """Train briefly, snapshot, and bench the online inference runtime."""
    from repro.core.engine import MultiProcessEngine
    from repro.gnn.models import make_task
    from repro.graph.datasets import load_dataset
    from repro.serve import InferenceEngine, ModelSnapshot, run_serving_workload
    from repro.serve.workload import make_scenario, make_update_stream, merge_reports
    from repro.tuning.serving import slo_objective
    from repro.utils.rng import derive_rng

    ds = load_dataset(args.dataset, seed=args.seed, scale_override=args.scale)
    sampler, model = make_task(args.task, ds.layer_dims(args.layers), seed=args.seed)
    trainer = MultiProcessEngine(
        ds, sampler, model, num_processes=1, global_batch_size=args.batch,
        backend="inline", seed=args.seed,
    )
    trainer.train(args.train_epochs)
    snapshot = ModelSnapshot.from_engine(trainer)
    if args.replicas > 1:
        return _serve_bench_cluster(args, ds, snapshot)
    engine = InferenceEngine(
        snapshot,
        ds,
        mode=args.mode,
        batch_mode=args.batch_mode,
        shard_policy=args.shard_policy,
        workers=args.serve_workers,
        cache_entries=args.cache_entries,
        timeout=args.timeout,
        staleness_budget=args.staleness_budget,
        delta_invalidation=args.delta_invalidation,
        tracing=args.trace is not None,
    )
    # --deltas N streams N Poisson-timed topology updates into the live
    # engine during the first segment: edges append through apply_delta
    # while the very same pool keeps serving (launches must stay flat).
    updates = None
    if args.deltas:
        updates = make_update_stream(
            ds.num_nodes,
            num_updates=args.deltas,
            rate_ups=args.delta_rate,
            edges_per_update=args.delta_edges,
            rng=derive_rng(args.seed, "serve-deltas"),
        )
    swap_lines = []
    delta_line = None
    try:
        engine.warm_up()  # pool fork paid before the clock starts
        # --swaps N splits the run into N+1 segments with a hot snapshot
        # reload between them: the live pool keeps its workers (launches
        # must stay flat) while weights travel the ParamStore channel.
        # A segment needs at least one request, so very small runs cap
        # the swap count rather than serving more than --requests.
        segments = min(args.swaps + 1, args.requests)
        seg_requests = [args.requests // segments] * segments
        seg_requests[-1] += args.requests - sum(seg_requests)
        # named traffic scenarios replace the workload's own Zipf draw
        # with an explicit per-request node stream (hub-ranked hot keys
        # need the graph for the in-degree popularity ranking)
        catalog = ds.val_idx
        if len(catalog) == 0:
            catalog = np.arange(ds.num_nodes, dtype=np.int64)
        reports = []
        for seg, n_req in enumerate(seg_requests):
            node_sequence = None
            if args.scenario != "zipf":
                node_sequence = make_scenario(
                    args.scenario, catalog, n_req, alpha=args.zipf,
                    graph=ds.graph, rng=derive_rng(args.seed + seg, "serve-scenario"),
                )
            if seg > 0:
                engine.reload(snapshot)
                swap_lines.append(
                    f"swap {seg}: generation={engine.generation}, "
                    f"launches={engine.pool.launches if engine.pool else '(inline)'}"
                )
            reports.append(
                run_serving_workload(
                    engine,
                    num_requests=n_req,
                    rate_rps=args.rate,
                    zipf_alpha=args.zipf,
                    max_batch=args.max_batch,
                    max_wait_ms=args.max_wait_ms,
                    closed_loop=args.closed,
                    concurrency=args.concurrency,
                    queue_limit=args.queue_limit,
                    node_sequence=node_sequence,
                    updates=updates if seg == 0 else None,
                    seed=args.seed + seg,
                )
            )
        report = merge_reports(reports)
        pool = engine.pool
        if args.deltas:
            delta_line = (
                f"deltas: applied={report.updates_applied}/{args.deltas}, "
                f"generation={report.graph_generation}, "
                f"invalidation={args.delta_invalidation} "
                f"(dropped={report.invalidated}, stale served={report.stale_served}, "
                f"freshness={report.freshness:.3f}), "
                f"update cost={report.update_ms:.1f}ms, "
                f"launches={pool.launches if pool is not None else '(inline)'}"
            )
        pool_line = (
            f"pool: workers={engine.n}, launches={pool.launches}, parked={pool.parked}; "
            f"arena: slot hits={report.transport.arena_hits}, "
            f"pickle fallbacks={report.transport.pickle_fallbacks}"
            if pool is not None
            else "pool: (inline mode)"
        )
        # greppable one-liner (CI asserts on it): per-rank CPU busy,
        # cross-bin steals, and the max/mean imbalance ratio
        balance_line = (
            "balance: policy={}, imbalance={:.3f}, steals={}, busy_ms=[{}]".format(
                report.shard_policy,
                report.imbalance,
                report.steal_count,
                ", ".join(f"{b:.1f}" for b in report.rank_busy_ms),
            )
        )
        # the trace arena dies with the engine: drain the spans into an
        # exportable document *before* close() unlinks the segments
        trace_doc = None
        if args.trace is not None:
            from repro.obs.export import chrome_trace_document

            trace_doc = chrome_trace_document(
                engine.trace_arena.drain(),
                engine.trace_names,
                rank_labels=engine.trace_rank_labels(),
                dropped=engine.trace_arena.dropped(),
            )
        metrics = engine.metrics
    finally:
        engine.close()
    loop = f"closed(c={args.concurrency})" if args.closed else f"open({args.rate:g} rps)"
    rows = [
        ["requests", report.requests],
        ["throughput req/s", f"{report.throughput_rps:.1f}"],
        ["latency p50 ms", f"{report.p50_ms:.2f}"],
        ["latency p95 ms", f"{report.p95_ms:.2f}"],
        ["latency p99 ms", f"{report.p99_ms:.2f}"],
        ["latency mean ms", f"{report.mean_ms:.2f}"],
        ["mean batch", f"{report.mean_batch:.2f}"],
        ["flushes full/deadline/drain",
         f"{report.full_flushes}/{report.deadline_flushes}/{report.drain_flushes}"],
        ["cache hit rate", f"{report.cache.hit_rate:.3f}"],
        ["cache hits/misses/evictions",
         f"{report.cache.hits}/{report.cache.misses}/{report.cache.evictions}"],
        ["service sample/merge/forward/cache ms",
         f"{report.sample_ms:.1f}/{report.merge_ms:.1f}"
         f"/{report.forward_ms:.1f}/{report.cache_ms:.1f}"],
        ["sampling share", f"{report.sampling_share:.3f}"],
        ["transport arena/pickle",
         f"{report.transport.arena_hits}/{report.transport.pickle_fallbacks} "
         f"(hit rate {report.transport.hit_rate:.3f})"],
        ["shard policy", report.shard_policy],
        ["rank busy ms",
         "/".join(f"{b:.1f}" for b in report.rank_busy_ms) or "-"],
        ["busy imbalance (max/mean)", f"{report.imbalance:.3f}"],
        ["stolen segments", report.steal_count],
    ]
    if args.queue_limit is not None:
        rows.append(["shed (queue limit)", f"{report.shed_count} (max queue {report.max_queue})"])
    table = render_table(
        ["metric", "value"],
        rows,
        title=(
            f"serve-bench — {args.task} on {args.dataset} (scale 2^{args.scale}), "
            f"mode={args.mode}/{args.batch_mode}, {loop}, "
            f"{args.scenario}(s={args.zipf:g}), "
            f"batch<={args.max_batch}, wait<={args.max_wait_ms:g}ms, "
            f"cache={args.cache_entries}"
        ),
    )
    lines = [table, pool_line, balance_line, *swap_lines]
    if delta_line is not None:
        lines.append(delta_line)
    if args.slo_ms is not None:
        lines.append(
            f"SLO {args.slo_ms:g} ms: p99 "
            f"{'MET' if report.p99_ms <= args.slo_ms else 'MISSED'} "
            f"(attainment {report.slo_attainment(args.slo_ms):.3f}, "
            f"objective {slo_objective(report, slo_ms=args.slo_ms):.6f})"
        )
    if args.report_json is not None:
        doc = report.as_dict(slo_ms=args.slo_ms)
        doc["bench"] = {
            "dataset": args.dataset,
            "task": args.task,
            "scale": args.scale,
            "mode": args.mode,
            "batch_mode": args.batch_mode,
            "workers": args.serve_workers if args.mode == "pool" else 1,
            "shard_policy": args.shard_policy,
            "scenario": args.scenario,
            "deltas": args.deltas,
            "delta_invalidation": args.delta_invalidation,
            "staleness_budget": args.staleness_budget,
            "swaps": args.swaps,
            "seed": args.seed,
        }
        with open(args.report_json, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        lines.append(f"report-json: wrote {args.report_json}")
    if trace_doc is not None:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(args.trace, trace_doc)
        other = trace_doc["otherData"]
        lines.append(
            f"trace: wrote {args.trace} ({other['span_count']} spans, "
            f"{sum(other['dropped_spans'])} dropped) — load in Perfetto or "
            f"run `repro trace {args.trace}`"
        )
    if args.metrics_json is not None:
        from repro.obs.export import write_metrics_json

        write_metrics_json(
            args.metrics_json,
            metrics,
            extra={
                "transport": {
                    "arena_hits": report.transport.arena_hits,
                    "pickle_fallbacks": report.transport.pickle_fallbacks,
                    "hit_rate": report.transport.hit_rate,
                },
                "report": report.as_dict(slo_ms=args.slo_ms),
            },
        )
        lines.append(f"metrics-json: wrote {args.metrics_json}")
    return "\n".join(lines)


def cmd_trace(args) -> str:
    """Summarize an exported Chrome-trace JSON file in the terminal."""
    from repro.obs.export import summarize_trace

    with open(args.file) as fh:
        doc = json.load(fh)
    return summarize_trace(doc, width=args.width, top=args.top)


COMMANDS = {
    "fig1": cmd_fig1,
    "fig6": cmd_fig6,
    "fig8": cmd_fig8,
    "landscape": cmd_landscape,
    "table4": cmd_table4,
    "table5": cmd_table5,
    "table6": cmd_table6,
    "train": cmd_train,
    "serve-bench": cmd_serve_bench,
    "trace": cmd_trace,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("list", help="list available experiment commands")
    for name in COMMANDS:
        p = sub.add_parser(name)
        if name == "trace":
            # operates on an exported file, not an experiment setup: no
            # dataset/platform/task arguments
            p.add_argument("file", help="Chrome-trace JSON from serve-bench --trace")
            p.add_argument(
                "--width", type=_positive_int, default=78,
                help="terminal width for the per-rank gantt",
            )
            p.add_argument(
                "--top", type=_positive_int, default=10,
                help="rows in the spans-by-self-time table",
            )
            continue
        _add_common(p)
        if name == "train":
            p.add_argument("--backend", default="inline", type=_backend_name)
            p.add_argument("--processes", type=_positive_int, default=2)
            p.add_argument("--epochs", type=_positive_int, default=1)
            p.add_argument("--batch", type=_positive_int, default=128)
            p.add_argument("--scale", type=_positive_int, default=10)
            p.add_argument("--layers", type=_positive_int, default=2)
            p.add_argument("--seed", type=int, default=0)
            p.add_argument(
                "--timeout", type=float, default=120.0,
                help="per-epoch worker deadline for the process backend (s)",
            )
            p.add_argument(
                "--prefetch", action="store_true",
                help="overlap sampling with compute (repro.pipeline)",
            )
            p.add_argument(
                "--samplers", type=_positive_int, default=1,
                help="sampler workers per rank when --prefetch is on",
            )
            p.add_argument(
                "--queue-depth", type=_positive_int, default=DEFAULT_QUEUE_DEPTH,
                help="batches sampled ahead of compute per rank",
            )
            p.add_argument(
                "--persistent", action=argparse.BooleanOptionalAction, default=None,
                help="process backend: keep rank workers alive across epochs "
                     "(default) or respawn them per epoch (--no-persistent)",
            )
        if name == "serve-bench":
            p.add_argument("--scale", type=_positive_int, default=10)
            p.add_argument("--layers", type=_positive_int, default=2)
            p.add_argument("--seed", type=int, default=0)
            p.add_argument("--batch", type=_positive_int, default=128)
            p.add_argument(
                "--train-epochs", type=_positive_int, default=1,
                help="quick inline training pass before the snapshot is frozen",
            )
            p.add_argument(
                "--mode", default="inline", choices=["inline", "pool"],
                help="inference execution: in-process or persistent worker pool",
            )
            p.add_argument(
                "--batch-mode", default="per_node", choices=["per_node", "frontier"],
                help="micro-batch forward: each node alone, or one vectorised "
                     "forward over the merged frontiers (bit-identical outputs)",
            )
            p.add_argument(
                "--queue-limit", type=_positive_int, default=None,
                help="admission control: bound the pending queue, shedding the "
                     "oldest request on overflow (default: unbounded)",
            )
            p.add_argument(
                "--swaps", type=_nonnegative_int, default=0,
                help="hot snapshot reloads mid-run (live pool keeps its "
                     "workers; weights travel the ParamStore channel)",
            )
            p.add_argument(
                "--serve-workers", type=_positive_int, default=2,
                help="pool mode: rank workers sharing each micro-batch",
            )
            p.add_argument(
                "--replicas", type=_positive_int, default=1,
                help="engine replicas behind the front-end router "
                     "(>1 runs the serving cluster; 1 keeps the "
                     "single-engine path)",
            )
            p.add_argument(
                "--route-policy", default="round_robin",
                choices=["round_robin", "consistent_hash", "cache_affinity"],
                help="cluster routing: cycle ready replicas, consistent "
                     "hashing over node ids, or cache-affinity with "
                     "queue-depth spill (all bit-identical)",
            )
            p.add_argument(
                "--shard-policy", default="chunk",
                choices=["chunk", "size_binned", "steal"],
                help="pool mode request->rank placement: index chunks, "
                     "LPT bins by the sampled-cost probe, or bins plus "
                     "shared-memory segment stealing (all bit-identical)",
            )
            p.add_argument(
                "--scenario", default="zipf",
                choices=["zipf", "hot_key", "flash_crowd"],
                help="traffic shape: benign Zipf draw, hub-ranked hot keys "
                     "over organic background, or hot keys plus a "
                     "flash-crowd ramp (skew set by --zipf)",
            )
            p.add_argument(
                "--max-batch", type=_positive_int, default=8,
                help="micro-batcher: flush when this many requests coalesce",
            )
            p.add_argument(
                "--max-wait-ms", type=float, default=2.0,
                help="micro-batcher: flush when the oldest request waited this long",
            )
            p.add_argument(
                "--cache-entries", type=_nonnegative_int, default=4096,
                help="LRU prediction-cache budget (0 disables the cache)",
            )
            p.add_argument("--requests", type=_positive_int, default=256)
            p.add_argument(
                "--rate", type=float, default=500.0,
                help="open-loop Poisson arrival rate (requests/s)",
            )
            p.add_argument(
                "--zipf", type=float, default=1.1,
                help="node-popularity skew (0 = uniform traffic)",
            )
            p.add_argument(
                "--closed", action="store_true",
                help="closed-loop traffic (fixed concurrency) instead of open-loop",
            )
            p.add_argument(
                "--concurrency", type=_positive_int, default=8,
                help="closed-loop client count",
            )
            p.add_argument(
                "--slo-ms", type=float, default=None,
                help="report p99 SLO attainment and the autotuner objective",
            )
            p.add_argument(
                "--timeout", type=float, default=120.0,
                help="pool mode: per-batch worker deadline (s)",
            )
            p.add_argument(
                "--deltas", type=_nonnegative_int, default=0,
                help="stream this many graph deltas into the live engine "
                     "during the run (0 = frozen graph)",
            )
            p.add_argument(
                "--delta-rate", type=float, default=50.0,
                help="Poisson rate of the update stream (updates/s)",
            )
            p.add_argument(
                "--delta-edges", type=_positive_int, default=8,
                help="edges appended per graph delta",
            )
            p.add_argument(
                "--staleness-budget", type=_nonnegative_int, default=0,
                help="serve cache entries through this many affecting "
                     "deltas before evicting (0 = always fresh)",
            )
            p.add_argument(
                "--delta-invalidation", default="scoped",
                choices=["scoped", "flush"],
                help="on apply_delta: evict only the reverse-reachable "
                     "set (scoped) or the whole cache (flush)",
            )
            p.add_argument(
                "--report-json", default=None, metavar="PATH",
                help="also write the full ServingReport as one JSON document",
            )
            p.add_argument(
                "--trace", default=None, metavar="PATH",
                help="enable shared-memory span tracing and write the run's "
                     "spans as Chrome trace-event JSON (Perfetto-loadable; "
                     "summarize with `repro trace PATH`)",
            )
            p.add_argument(
                "--metrics-json", default=None, metavar="PATH",
                help="write the engine's metrics registry (phase histograms, "
                     "batcher counters, transport) as one JSON document",
            )
    args = parser.parse_args(argv)
    if args.command in (None, "list"):
        print("available commands:", ", ".join(["list", *COMMANDS]))
        return 0
    # --persistent/--no-persistent only means something on the process
    # backend; fail here, before the command builds its dataset, rather
    # than silently ignoring the flag
    if args.command == "train" and args.persistent is not None and args.backend != "process":
        raise SystemExit(
            f"error: --{'persistent' if args.persistent else 'no-persistent'} "
            f"applies to the process backend only (got --backend {args.backend})"
        )
    print(COMMANDS[args.command](args))
    return 0


if __name__ == "__main__":
    sys.exit(main())
