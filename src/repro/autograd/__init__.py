"""Minimal reverse-mode automatic differentiation over numpy arrays.

This subpackage replaces PyTorch for the purposes of this reproduction:
it provides exactly the tensor operations mini-batch GNN training needs
(dense linear algebra, ReLU, concat, gather, segment reductions via
:mod:`repro.gnn.aggregate`, log-softmax + NLL loss), a ``Module``/
``Linear`` layer system, parameter initialisers and SGD/Adam optimizers.

The design is deliberately simple — a dynamic tape of backward closures,
topologically sorted at ``backward()`` time — but numerically serious:
every op's gradient is verified against central finite differences in
``tests/autograd/test_gradcheck.py``.
"""

from repro.autograd.tensor import (
    Tensor,
    no_grad,
    inference_mode,
    is_grad_enabled,
    is_inference_mode,
)
from repro.autograd.ops import (
    add,
    sub,
    mul,
    matmul,
    relu,
    concat,
    gather_rows,
    sum_,
    mean_,
    reshape,
    transpose,
    dropout,
)
from repro.autograd.functional import log_softmax, nll_loss, cross_entropy, accuracy
from repro.autograd.module import Module, Parameter, Linear, Sequential
from repro.autograd.optim import Optimizer, SGD, Adam
from repro.autograd import init
from repro.autograd.serialize import save_module, load_module, save_payload, load_payload

__all__ = [
    "Tensor",
    "no_grad",
    "inference_mode",
    "is_grad_enabled",
    "is_inference_mode",
    "add",
    "sub",
    "mul",
    "matmul",
    "relu",
    "concat",
    "gather_rows",
    "sum_",
    "mean_",
    "reshape",
    "transpose",
    "dropout",
    "log_softmax",
    "nll_loss",
    "cross_entropy",
    "accuracy",
    "Module",
    "Parameter",
    "Linear",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "init",
    "save_module",
    "load_module",
    "save_payload",
    "load_payload",
]
