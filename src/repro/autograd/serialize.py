"""Model checkpointing: save/load ``Module`` state dicts as ``.npz``.

A trained ARGO run should be resumable and its model shippable; this is
the numpy-native equivalent of ``torch.save(model.state_dict())``.
"""

from __future__ import annotations

import pathlib

import numpy as np

from repro.autograd.module import Module

__all__ = ["save_module", "load_module"]


def save_module(module: Module, path) -> pathlib.Path:
    """Write the module's parameters to ``path`` (``.npz`` appended if missing)."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    # '.' is not valid inside npz keys for attribute-style access, but
    # plain dict keys are fine; keep names verbatim.
    np.savez(path, **{k: v for k, v in state.items()})
    return path


def load_module(module: Module, path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module`` (in place)."""
    path = pathlib.Path(path)
    with np.load(path) as data:
        state = {k: data[k] for k in data.files}
    module.load_state_dict(state)
    return module
