"""Model checkpointing: save/load ``Module`` state dicts as ``.npz``.

A trained ARGO run should be resumable and its model shippable; this is
the numpy-native equivalent of ``torch.save(model.state_dict())``.

:func:`save_payload` / :func:`load_payload` are the general substrate:
named arrays plus a JSON metadata record in one ``.npz`` file.  The
serving layer's :class:`repro.serve.snapshot.ModelSnapshot` uses them to
freeze a trained model (weights + model/sampler config) into a single
shippable artefact.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.autograd.module import Module

__all__ = ["save_module", "load_module", "save_payload", "load_payload"]

#: reserved npz key carrying the JSON metadata blob of a payload file
_META_KEY = "__meta__"


def _npz_path(path) -> pathlib.Path:
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    return path


def save_payload(path, arrays: dict[str, np.ndarray], meta: dict) -> pathlib.Path:
    """Write named arrays plus a JSON-serialisable ``meta`` dict to one npz.

    ``meta`` must be JSON-encodable (tuples come back as lists); array
    dtypes and shapes round-trip exactly.  Returns the resolved path.
    """
    path = _npz_path(path)
    if _META_KEY in arrays:
        raise ValueError(f"array key {_META_KEY!r} is reserved for metadata")
    blob = np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)
    np.savez(path, **{_META_KEY: blob}, **{k: np.asarray(v) for k, v in arrays.items()})
    return path


def load_payload(path) -> tuple[dict[str, np.ndarray], dict]:
    """Inverse of :func:`save_payload`: returns ``(arrays, meta)``.

    Applies the same ``.npz`` suffix normalisation as the save side, so
    the exact path handed to :func:`save_payload` loads back regardless
    of whether the caller kept the resolved path.
    """
    path = _npz_path(path)
    with np.load(path) as data:
        if _META_KEY not in data.files:
            raise ValueError(f"{path} is not a payload file (missing {_META_KEY!r})")
        meta = json.loads(bytes(data[_META_KEY].tobytes()).decode("utf-8"))
        arrays = {k: data[k] for k in data.files if k != _META_KEY}
    return arrays, meta


def save_module(module: Module, path) -> pathlib.Path:
    """Write the module's parameters to ``path`` (``.npz`` appended if missing)."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    state = module.state_dict()
    if not state:
        raise ValueError("module has no parameters to save")
    # '.' is not valid inside npz keys for attribute-style access, but
    # plain dict keys are fine; keep names verbatim.
    np.savez(path, **{k: v for k, v in state.items()})
    return path


def load_module(module: Module, path) -> Module:
    """Load parameters saved by :func:`save_module` into ``module`` (in place)."""
    path = pathlib.Path(path)
    with np.load(path) as data:
        state = {k: data[k] for k in data.files}
    module.load_state_dict(state)
    return module
