"""Parameter initialisers."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator

__all__ = ["glorot_uniform", "kaiming_uniform", "zeros", "normal"]


def glorot_uniform(shape: tuple[int, int], *, gain: float = 1.0, rng=None) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = gain * sqrt(6/(fan_in+fan_out))."""
    if len(shape) != 2:
        raise ValueError(f"glorot_uniform expects a 2-D shape, got {shape}")
    rng = as_generator(rng)
    fan_in, fan_out = shape
    a = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-a, a, size=shape).astype(np.float32)


def kaiming_uniform(shape: tuple[int, int], *, rng=None) -> np.ndarray:
    """He uniform for ReLU networks: U(-a, a) with a = sqrt(6/fan_in)."""
    if len(shape) != 2:
        raise ValueError(f"kaiming_uniform expects a 2-D shape, got {shape}")
    rng = as_generator(rng)
    fan_in = shape[0]
    a = np.sqrt(6.0 / fan_in)
    return rng.uniform(-a, a, size=shape).astype(np.float32)


def zeros(shape) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def normal(shape, *, std: float = 0.01, rng=None) -> np.ndarray:
    rng = as_generator(rng)
    return (std * rng.standard_normal(shape)).astype(np.float32)
