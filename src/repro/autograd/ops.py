"""Differentiable primitive operations.

Each op builds the result ``Tensor`` with ``(parent, vjp)`` closures.  VJPs
operate on raw numpy arrays; broadcasting is undone centrally via
:func:`repro.autograd.tensor.unbroadcast`.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor, is_grad_enabled, unbroadcast

__all__ = [
    "add",
    "sub",
    "mul",
    "div",
    "pow_",
    "matmul",
    "relu",
    "exp",
    "log",
    "concat",
    "gather_rows",
    "scatter_add_rows",
    "sum_",
    "mean_",
    "reshape",
    "transpose",
    "dropout",
]


def _wrap(x) -> Tensor:
    return x if isinstance(x, Tensor) else Tensor(np.asarray(x, dtype=np.float32))


def _make(data: np.ndarray, parents, op: str) -> Tensor:
    if not is_grad_enabled():
        # forward-only fast path (no_grad / inference_mode): the tape is
        # never consulted, so skip the parent scan entirely
        return Tensor(data, requires_grad=False, _op=op)
    requires = any(p.requires_grad or p._parents for p, _ in parents)
    return Tensor(
        data,
        requires_grad=False,
        _parents=parents if requires else None,
        _op=op,
    )


# ----------------------------------------------------------------------
# elementwise arithmetic
# ----------------------------------------------------------------------
def add(a, b) -> Tensor:
    a, b = _wrap(a), _wrap(b)
    out = _make(
        a.data + b.data,
        [
            (a, lambda g: unbroadcast(g, a.shape)),
            (b, lambda g: unbroadcast(g, b.shape)),
        ],
        "add",
    )
    return out


def sub(a, b) -> Tensor:
    a, b = _wrap(a), _wrap(b)
    return _make(
        a.data - b.data,
        [
            (a, lambda g: unbroadcast(g, a.shape)),
            (b, lambda g: unbroadcast(-g, b.shape)),
        ],
        "sub",
    )


def mul(a, b) -> Tensor:
    a, b = _wrap(a), _wrap(b)
    return _make(
        a.data * b.data,
        [
            (a, lambda g: unbroadcast(g * b.data, a.shape)),
            (b, lambda g: unbroadcast(g * a.data, b.shape)),
        ],
        "mul",
    )


def div(a, b) -> Tensor:
    a, b = _wrap(a), _wrap(b)
    return _make(
        a.data / b.data,
        [
            (a, lambda g: unbroadcast(g / b.data, a.shape)),
            (b, lambda g: unbroadcast(-g * a.data / (b.data**2), b.shape)),
        ],
        "div",
    )


def pow_(a, p: float) -> Tensor:
    a = _wrap(a)
    p = float(p)
    return _make(
        a.data**p,
        [(a, lambda g: g * p * a.data ** (p - 1.0))],
        "pow",
    )


def exp(a) -> Tensor:
    a = _wrap(a)
    out_data = np.exp(a.data)
    return _make(out_data, [(a, lambda g: g * out_data)], "exp")


def log(a) -> Tensor:
    a = _wrap(a)
    return _make(np.log(a.data), [(a, lambda g: g / a.data)], "log")


# ----------------------------------------------------------------------
# linear algebra
# ----------------------------------------------------------------------
def matmul(a, b, *, row_splits=None) -> Tensor:
    """``a @ b``, optionally computed in independent row segments.

    ``row_splits`` (a monotone ``0..len(a)`` offset array) computes the
    product one ``a[s:e] @ b`` slice at a time.  The *values* are the
    same either way in exact arithmetic, but not bit-for-bit: BLAS picks
    different kernels (and accumulation orders) for different row
    counts, so row ``i`` of one big product need not equal row ``i`` of
    a smaller one.  Shared-frontier batched inference
    (:mod:`repro.serve.frontier`) therefore passes each request's
    segment bounds — every slice reproduces the exact call geometry of
    that request's solo forward, which is what makes merged predictions
    bit-identical to per-node inference.  Gradients treat the product
    whole (training never splits rows).
    """
    a, b = _wrap(a), _wrap(b)
    if a.ndim != 2 or b.ndim != 2:
        raise ValueError(f"matmul expects 2-D tensors, got {a.shape} @ {b.shape}")
    if row_splits is None or len(row_splits) <= 2:
        out_data = a.data @ b.data
    else:
        row_splits = np.asarray(row_splits, dtype=np.int64)
        if (
            row_splits[0] != 0
            or row_splits[-1] != len(a.data)
            or np.any(np.diff(row_splits) < 0)
        ):
            raise ValueError(
                f"row_splits must be a monotone 0..{len(a.data)} offset array, "
                f"got [{row_splits[0]}, ..., {row_splits[-1]}]"
            )
        out_data = np.concatenate(
            [a.data[s:e] @ b.data for s, e in zip(row_splits[:-1], row_splits[1:])],
            axis=0,
        )
    return _make(
        out_data,
        [
            (a, lambda g: g @ b.data.T),
            (b, lambda g: a.data.T @ g),
        ],
        "matmul",
    )


def transpose(a) -> Tensor:
    a = _wrap(a)
    return _make(a.data.T, [(a, lambda g: g.T)], "transpose")


def reshape(a, shape) -> Tensor:
    a = _wrap(a)
    old_shape = a.shape
    return _make(a.data.reshape(shape), [(a, lambda g: g.reshape(old_shape))], "reshape")


# ----------------------------------------------------------------------
# non-linearities
# ----------------------------------------------------------------------
def relu(a) -> Tensor:
    a = _wrap(a)
    mask = a.data > 0
    return _make(
        np.where(mask, a.data, 0.0).astype(a.data.dtype),
        [(a, lambda g: g * mask)],
        "relu",
    )


def dropout(a, p: float, *, training: bool = True, rng=None) -> Tensor:
    """Inverted dropout: scales kept activations by ``1/(1-p)``."""
    a = _wrap(a)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return a
    rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    mask = (rng.random(a.shape) >= p).astype(a.data.dtype) / (1.0 - p)
    return _make(a.data * mask, [(a, lambda g: g * mask)], "dropout")


# ----------------------------------------------------------------------
# shape combinators
# ----------------------------------------------------------------------
def concat(tensors, axis: int = -1) -> Tensor:
    """Concatenate along ``axis`` (GraphSAGE's ``h_v || mean(h_u)``)."""
    tensors = [_wrap(t) for t in tensors]
    if not tensors:
        raise ValueError("concat of empty sequence")
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    splits = np.cumsum(sizes)[:-1]

    def make_vjp(i):
        def vjp(g):
            return np.split(g, splits, axis=axis)[i]

        return vjp

    return _make(data, [(t, make_vjp(i)) for i, t in enumerate(tensors)], "concat")


def gather_rows(a, index: np.ndarray) -> Tensor:
    """Select rows ``a[index]`` (feature lookup for sampled nodes).

    Backward scatter-adds into the source rows — the memory-intensive
    ``aten::index_select`` the paper's Figure 2 highlights.
    """
    a = _wrap(a)
    index = np.asarray(index, dtype=np.int64)

    def vjp(g):
        out = np.zeros_like(a.data)
        np.add.at(out, index, g)
        return out

    return _make(a.data[index], [(a, vjp)], "gather_rows")


def scatter_add_rows(a, index: np.ndarray, num_rows: int) -> Tensor:
    """Scatter rows of ``a`` into a ``(num_rows, F)`` zero tensor by index."""
    a = _wrap(a)
    index = np.asarray(index, dtype=np.int64)
    out_data = np.zeros((num_rows,) + a.shape[1:], dtype=a.data.dtype)
    np.add.at(out_data, index, a.data)
    return _make(out_data, [(a, lambda g: g[index])], "scatter_add_rows")


# ----------------------------------------------------------------------
# reductions
# ----------------------------------------------------------------------
def sum_(a, axis=None, keepdims: bool = False) -> Tensor:
    a = _wrap(a)
    out_data = a.data.sum(axis=axis, keepdims=keepdims)

    def vjp(g):
        if axis is None:
            return np.broadcast_to(g, a.shape).astype(a.data.dtype)
        g2 = g if keepdims else np.expand_dims(g, axis)
        return np.broadcast_to(g2, a.shape).astype(a.data.dtype)

    return _make(out_data, [(a, vjp)], "sum")


def mean_(a, axis=None, keepdims: bool = False) -> Tensor:
    a = _wrap(a)
    out_data = a.data.mean(axis=axis, keepdims=keepdims)
    denom = a.size if axis is None else a.shape[axis]

    def vjp(g):
        if axis is None:
            return (np.broadcast_to(g, a.shape) / denom).astype(a.data.dtype)
        g2 = g if keepdims else np.expand_dims(g, axis)
        return (np.broadcast_to(g2, a.shape) / denom).astype(a.data.dtype)

    return _make(out_data, [(a, vjp)], "mean")
