"""The ``Tensor`` class: a numpy array plus a backward tape.

Gradient propagation follows the standard dynamic-autodiff recipe:

* every differentiable op creates a result tensor holding a list of
  ``(parent, vjp)`` pairs, where ``vjp`` maps the result's gradient to the
  parent's gradient contribution;
* ``Tensor.backward()`` topologically sorts the tape and accumulates.

Broadcasting is handled once, centrally, in :func:`unbroadcast`.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "inference_mode",
    "is_grad_enabled",
    "is_inference_mode",
    "unbroadcast",
]

_GRAD_ENABLED = True
_INFERENCE_MODE = False


@contextlib.contextmanager
def no_grad():
    """Context manager disabling tape construction (inference mode)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


@contextlib.contextmanager
def inference_mode():
    """Forward-only fast path: ``no_grad`` plus skipped tape bookkeeping.

    Inside the block every op takes the cheap construction path — no
    ``(parent, vjp)`` scan, no parent-list handling — so a serving
    forward pays only the numpy kernels.  Numerics are untouched: the
    produced values are bit-identical to the grad-enabled forward (the
    tape never influences values), which the serve tests assert.
    """
    global _GRAD_ENABLED, _INFERENCE_MODE
    prev = (_GRAD_ENABLED, _INFERENCE_MODE)
    _GRAD_ENABLED, _INFERENCE_MODE = False, True
    try:
        yield
    finally:
        _GRAD_ENABLED, _INFERENCE_MODE = prev


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def is_inference_mode() -> bool:
    return _INFERENCE_MODE


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # sum leading dims added by broadcasting
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # sum dims where the original size was 1
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A differentiable wrapper around a ``float32``/``float64`` numpy array."""

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_op")

    def __init__(self, data, requires_grad: bool = False, *, _parents=None, _op: str = ""):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float32 if np.asarray(data).dtype.kind != "f" else None)
        if self.data.dtype == np.float64:
            pass  # allow float64 for numerical tests
        elif self.data.dtype != np.float32:
            self.data = self.data.astype(np.float32)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents: list[tuple["Tensor", Callable[[np.ndarray], np.ndarray]]] = (
            list(_parents) if (_parents and _GRAD_ENABLED) else []
        )
        self._op = _op

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zeros(*shape, requires_grad: bool = False, dtype=np.float32) -> "Tensor":
        return Tensor(np.zeros(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False, dtype=np.float32) -> "Tensor":
        return Tensor(np.ones(shape, dtype=dtype), requires_grad=requires_grad)

    @staticmethod
    def from_numpy(arr: np.ndarray, requires_grad: bool = False) -> "Tensor":
        return Tensor(arr, requires_grad=requires_grad)

    # ------------------------------------------------------------------
    # basic introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """The underlying array (a view — do not mutate in training code)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}{flag}, op={self._op or 'leaf'})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # operator sugar (implementations in ops.py to keep this file small)
    # ------------------------------------------------------------------
    def __add__(self, other):
        from repro.autograd import ops

        return ops.add(self, other)

    __radd__ = __add__

    def __sub__(self, other):
        from repro.autograd import ops

        return ops.sub(self, other)

    def __rsub__(self, other):
        from repro.autograd import ops

        return ops.sub(other, self)

    def __mul__(self, other):
        from repro.autograd import ops

        return ops.mul(self, other)

    __rmul__ = __mul__

    def __truediv__(self, other):
        from repro.autograd import ops

        return ops.div(self, other)

    def __neg__(self):
        from repro.autograd import ops

        return ops.mul(self, -1.0)

    def __matmul__(self, other):
        from repro.autograd import ops

        return ops.matmul(self, other)

    def __pow__(self, p):
        from repro.autograd import ops

        return ops.pow_(self, p)

    def sum(self, axis=None, keepdims=False):
        from repro.autograd import ops

        return ops.sum_(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims=False):
        from repro.autograd import ops

        return ops.mean_(self, axis=axis, keepdims=keepdims)

    def reshape(self, *shape):
        from repro.autograd import ops

        return ops.reshape(self, shape if len(shape) > 1 else shape[0])

    @property
    def T(self):
        from repro.autograd import ops

        return ops.transpose(self)

    def relu(self):
        from repro.autograd import ops

        return ops.relu(self)

    # ------------------------------------------------------------------
    # backward
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | float | None = None) -> None:
        """Back-propagate from this tensor through the recorded tape.

        ``grad`` defaults to 1 for scalar tensors (the loss).  Gradients
        accumulate into ``.grad`` of every reachable tensor with
        ``requires_grad=True``.
        """
        if grad is None:
            if self.data.size != 1:
                raise ValueError(
                    "backward() without an explicit gradient requires a scalar tensor"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            grad = np.broadcast_to(grad, self.data.shape).astype(self.data.dtype)

        # topological order over the tape
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent, _ in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node.requires_grad:
                node.grad = g if node.grad is None else node.grad + g
            for parent, vjp in node._parents:
                pg = vjp(g)
                if pg is None:
                    continue
                pid = id(parent)
                if pid in grads:
                    grads[pid] = grads[pid] + pg
                else:
                    grads[pid] = pg

    def zero_grad(self) -> None:
        self.grad = None
