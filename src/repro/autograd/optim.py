"""Optimizers: plain SGD (the paper's synchronous SGD step) and Adam
(the optimizer the example programs in Listing 2/3 use)."""

from __future__ import annotations

import numpy as np

from repro.autograd.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam"]


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params, lr: float, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data = p.data - self.lr * g


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba 2015)."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = float(lr)
        self.b1, self.b2 = float(b1), float(b2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.b1**self._t
        b2t = 1.0 - self.b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.b1
            m += (1.0 - self.b1) * g
            v *= self.b2
            v += (1.0 - self.b2) * (g * g)
            m_hat = m / b1t
            v_hat = v / b2t
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
