"""Optimizers: plain SGD (the paper's synchronous SGD step) and Adam
(the optimizer the example programs in Listing 2/3 use)."""

from __future__ import annotations

import numpy as np

from repro.autograd.module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "make_optimizer"]


class Optimizer:
    """Base optimizer over a list of parameters."""

    def __init__(self, params):
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")

    def zero_grad(self) -> None:
        for p in self.params:
            p.grad = None

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    # ------------------------------------------------------------------
    # state round-tripping: the process execution backend rebuilds each
    # rank's optimizer inside the worker and ships the evolved state back,
    # so momentum/moment buffers must survive a (de)serialisation cycle.
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Picklable snapshot of the optimizer's internal buffers."""
        return {}

    def load_state_dict(self, state: dict) -> None:
        """Restore buffers from :meth:`state_dict` output."""
        if state:
            raise ValueError(f"unexpected optimizer state keys: {sorted(state)}")


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, params, lr: float, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.lr = float(lr)
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data = p.data - self.lr * g

    def state_dict(self) -> dict:
        return {"velocity": [v.copy() for v in self._velocity]}

    def load_state_dict(self, state: dict) -> None:
        velocity = state["velocity"]
        if len(velocity) != len(self.params):
            raise ValueError(
                f"velocity count {len(velocity)} != parameter count {len(self.params)}"
            )
        self._velocity = [np.array(v, dtype=p.data.dtype) for v, p in zip(velocity, self.params)]


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba 2015)."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be > 0, got {lr}")
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = float(lr)
        self.b1, self.b2 = float(b1), float(b2)
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1t = 1.0 - self.b1**self._t
        b2t = 1.0 - self.b2**self._t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            m *= self.b1
            m += (1.0 - self.b1) * g
            v *= self.b2
            v += (1.0 - self.b2) * (g * g)
            m_hat = m / b1t
            v_hat = v / b2t
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_dict(self) -> dict:
        return {
            "m": [m.copy() for m in self._m],
            "v": [v.copy() for v in self._v],
            "t": self._t,
        }

    def load_state_dict(self, state: dict) -> None:
        if len(state["m"]) != len(self.params) or len(state["v"]) != len(self.params):
            raise ValueError("moment buffer count != parameter count")
        self._m = [np.array(m, dtype=p.data.dtype) for m, p in zip(state["m"], self.params)]
        self._v = [np.array(v, dtype=p.data.dtype) for v, p in zip(state["v"], self.params)]
        self._t = int(state["t"])


def make_optimizer(name: str, params, lr: float) -> Optimizer:
    """Instantiate an optimizer by name (``adam`` or ``sgd``)."""
    key = name.lower()
    if key == "adam":
        return Adam(params, lr=lr)
    if key == "sgd":
        return SGD(params, lr=lr)
    raise ValueError(f"unknown optimizer {name!r}; options: adam, sgd")
