"""Loss functions and metrics for node classification."""

from __future__ import annotations

import numpy as np

from repro.autograd.tensor import Tensor
from repro.autograd.ops import _make, _wrap

__all__ = ["log_softmax", "nll_loss", "cross_entropy", "accuracy"]


def log_softmax(a, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax along ``axis``."""
    a = _wrap(a)
    shifted = a.data - a.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp
    softmax = np.exp(out_data)

    def vjp(g):
        return (g - softmax * g.sum(axis=axis, keepdims=True)).astype(a.data.dtype)

    return _make(out_data, [(a, vjp)], "log_softmax")


def nll_loss(log_probs, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """Negative log-likelihood of integer ``targets`` under ``log_probs``."""
    log_probs = _wrap(log_probs)
    targets = np.asarray(targets, dtype=np.int64)
    if log_probs.ndim != 2:
        raise ValueError(f"nll_loss expects (N, C) log-probs, got {log_probs.shape}")
    n, c = log_probs.shape
    if targets.shape != (n,):
        raise ValueError(f"targets shape {targets.shape} incompatible with input {log_probs.shape}")
    if len(targets) and (targets.min() < 0 or targets.max() >= c):
        raise ValueError("target class out of range")
    picked = log_probs.data[np.arange(n), targets]
    if reduction == "mean":
        out_data = np.asarray(-picked.mean(), dtype=log_probs.data.dtype)
        scale = 1.0 / n
    elif reduction == "sum":
        out_data = np.asarray(-picked.sum(), dtype=log_probs.data.dtype)
        scale = 1.0
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def vjp(g):
        grad = np.zeros_like(log_probs.data)
        grad[np.arange(n), targets] = -scale
        return grad * g

    return _make(out_data, [(log_probs, vjp)], "nll_loss")


def cross_entropy(logits, targets: np.ndarray, reduction: str = "mean") -> Tensor:
    """``nll_loss(log_softmax(logits), targets)`` — the paper's training loss."""
    return nll_loss(log_softmax(logits), targets, reduction=reduction)


def accuracy(logits, targets: np.ndarray) -> float:
    """Fraction of rows whose argmax matches ``targets``."""
    logits = _wrap(logits)
    targets = np.asarray(targets, dtype=np.int64)
    if len(targets) == 0:
        return 0.0
    pred = logits.data.argmax(axis=-1)
    return float((pred == targets).mean())
