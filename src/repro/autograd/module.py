"""``Module``/``Parameter`` layer system (the ``torch.nn`` stand-in).

Modules register parameters and sub-modules automatically via
``__setattr__``, support ``state_dict``/``load_state_dict`` for the DDP
broadcast of initial weights, and a ``train()``/``eval()`` mode flag that
gates dropout.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from repro.autograd.ops import matmul as ops_matmul
from repro.autograd.tensor import Tensor
from repro.autograd import init as init_mod

__all__ = ["Parameter", "Module", "Linear", "Sequential"]


class Parameter(Tensor):
    """A trainable tensor (always ``requires_grad=True``)."""

    def __init__(self, data):
        super().__init__(np.asarray(data, dtype=np.float32), requires_grad=True)
        # Parameters must track gradients even when constructed inside a
        # no_grad() block (e.g. model built during evaluation setup).
        self.requires_grad = True


class Module:
    """Base class for layers and models."""

    #: names of mutable non-parameter attributes that must travel with the
    #: weights when a replica crosses an execution-backend boundary (e.g.
    #: dropout-stream counters); subclasses extend.  Collected recursively
    #: by :meth:`extra_state_dict`.
    EXTRA_STATE_ATTRS: tuple[str, ...] = ()

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # ------------------------------------------------------------------
    def forward(self, *args, **kwargs):  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.grad = None

    # ------------------------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for mod in self._modules.values():
            mod.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    # ------------------------------------------------------------------
    def state_dict(self) -> OrderedDict:
        return OrderedDict((name, p.data.copy()) for name, p in self.named_parameters())

    def load_state_dict(self, state: dict) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, arr in state.items():
            p = own[name]
            arr = np.asarray(arr, dtype=p.data.dtype)
            if arr.shape != p.data.shape:
                raise ValueError(f"shape mismatch for {name}: {arr.shape} vs {p.data.shape}")
            p.data = arr.copy()

    # ------------------------------------------------------------------
    def extra_state_dict(self, prefix: str = "") -> dict:
        """Recursively collect :attr:`EXTRA_STATE_ATTRS` (dotted names).

        Execution backends ship this alongside ``state_dict`` so that a
        replica evolved in a worker process leaves the parent's copy in
        the identical state — including stochastic bookkeeping like
        dropout counters that parameters don't capture.
        """
        out = {f"{prefix}{k}": getattr(self, k) for k in self.EXTRA_STATE_ATTRS}
        for name, mod in self._modules.items():
            out.update(mod.extra_state_dict(prefix=f"{prefix}{name}."))
        return out

    def load_extra_state_dict(self, state: dict) -> None:
        """Restore attributes captured by :meth:`extra_state_dict`."""
        for key, value in state.items():
            head, _, rest = key.partition(".")
            if rest:
                self._modules[head].load_extra_state_dict({rest: value})
            else:
                if head not in self.EXTRA_STATE_ATTRS:
                    raise KeyError(f"unknown extra-state attribute {head!r}")
                setattr(self, head, value)


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with Glorot-initialised weights."""

    def __init__(self, in_features: int, out_features: int, *, bias: bool = True, rng=None):
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ValueError(f"invalid Linear dims ({in_features}, {out_features})")
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init_mod.glorot_uniform((in_features, out_features), rng=rng))
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None

    def forward(self, x: Tensor, *, row_splits=None) -> Tensor:
        # row_splits: compute the product in independent row segments —
        # see ops.matmul; the bias broadcast is per-row either way
        out = ops_matmul(x, self.weight, row_splits=row_splits)
        if self.bias is not None:
            out = out + self.bias
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return f"Linear({self.in_features}, {self.out_features}, bias={self.bias is not None})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *mods: Module):
        super().__init__()
        for i, m in enumerate(mods):
            setattr(self, f"layer{i}", m)
        self._order = list(mods)

    def forward(self, x):
        for m in self._order:
            x = m(x)
        return x

    def __setattr__(self, name, value):
        # allow the bookkeeping list
        if name == "_order":
            object.__setattr__(self, name, value)
        else:
            super().__setattr__(name, value)
