"""Frozen model snapshots: the train → serve hand-off artefact.

A :class:`ModelSnapshot` is everything online inference needs and
nothing it does not: the trained weights, the model's constructor config
(registry name, layer dims, dropout, init seed) and the sampler's config
— no optimizer state, no training history.  It captures from a live
model/engine, round-trips through one ``.npz`` file
(:func:`repro.autograd.serialize.save_payload`), and rebuilds a fresh
model/sampler pair anywhere — the serving process never needs the
training process's objects, only the file.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.autograd.module import Module
from repro.autograd.serialize import load_payload, save_payload
from repro.sampling.base import SAMPLER_REGISTRY, Sampler, make_sampler

__all__ = ["ModelSnapshot"]

#: payload format marker (bump on incompatible layout changes)
_FORMAT = 1

#: npz key prefix for weight arrays
_PARAM_PREFIX = "param/"


def _model_name(model: Module) -> str:
    """Reverse-lookup a model's registry name from its concrete type."""
    from repro.gnn.models import MODEL_REGISTRY  # lazy: gnn imports autograd

    for name, cls in MODEL_REGISTRY.items():
        if type(model) is cls:
            return name
    raise ValueError(
        f"cannot snapshot {type(model).__name__}: not a registered model "
        f"(known: {sorted(set(MODEL_REGISTRY))})"
    )


def _sampler_config(sampler: Sampler) -> tuple[str, dict]:
    """A sampler's registry name and reconstruction kwargs."""
    name = next(
        (n for n, cls in SAMPLER_REGISTRY.items() if type(sampler) is cls), None
    )
    if name is None:
        raise ValueError(
            f"cannot snapshot {type(sampler).__name__}: not a registered "
            f"sampler (known: {sorted(SAMPLER_REGISTRY)})"
        )
    config: dict = {"fanouts": [int(f) for f in sampler.fanouts]}
    if name == "shadow":
        config["num_layers"] = int(sampler.num_layers)
    return name, config


@dataclass
class ModelSnapshot:
    """Optimizer-free export of a trained (model, sampler) pair.

    Build with :meth:`capture` (or :meth:`from_engine`), persist with
    :meth:`save`/:meth:`load`, and rehydrate with :meth:`build_model` /
    :meth:`build_sampler`.  ``state`` holds the weights exactly as
    ``Module.state_dict`` produced them — dtypes and shapes round-trip
    bit-identically through the file.
    """

    model_name: str
    dims: list[int]
    dropout: float
    seed: int
    sampler_name: str
    sampler_config: dict
    state: dict = field(repr=False)
    dataset_name: str | None = None

    # ------------------------------------------------------------------
    @classmethod
    def capture(cls, model: Module, sampler: Sampler, *, dataset_name: str | None = None) -> "ModelSnapshot":
        """Freeze a live model + sampler into a snapshot (weights copied)."""
        sampler_name, sampler_config = _sampler_config(sampler)
        return cls(
            model_name=_model_name(model),
            dims=[int(d) for d in model.dims],
            dropout=float(model.dropout),
            seed=int(model.seed),
            sampler_name=sampler_name,
            sampler_config=sampler_config,
            state=model.state_dict(),
            dataset_name=dataset_name,
        )

    @classmethod
    def from_engine(cls, engine) -> "ModelSnapshot":
        """Capture a :class:`~repro.core.engine.MultiProcessEngine`'s
        rank-0 replica and sampler (all replicas hold identical weights)."""
        return cls.capture(
            engine.model, engine.sampler, dataset_name=engine.dataset.name
        )

    # ------------------------------------------------------------------
    def build_model(self) -> Module:
        """A fresh model instance loaded with the snapshot weights."""
        from repro.gnn.models import build_model  # lazy: gnn imports autograd

        model = build_model(
            self.model_name, list(self.dims), dropout=self.dropout, seed=self.seed
        )
        model.load_state_dict(self.state)
        return model

    def build_sampler(self) -> Sampler:
        return make_sampler(self.sampler_name, **self.sampler_config)

    @property
    def num_parameters(self) -> int:
        return int(sum(np.asarray(v).size for v in self.state.values()))

    @property
    def out_dim(self) -> int:
        """Width of one prediction row (the model's output layer)."""
        return int(self.dims[-1])

    # ------------------------------------------------------------------
    def save(self, path):
        """Write the snapshot to one ``.npz`` file; returns the path."""
        meta = {
            "format": _FORMAT,
            "model_name": self.model_name,
            "dims": list(self.dims),
            "dropout": self.dropout,
            "seed": self.seed,
            "sampler_name": self.sampler_name,
            "sampler_config": self.sampler_config,
            "dataset_name": self.dataset_name,
        }
        arrays = {f"{_PARAM_PREFIX}{k}": v for k, v in self.state.items()}
        return save_payload(path, arrays, meta)

    @classmethod
    def load(cls, path) -> "ModelSnapshot":
        """Inverse of :meth:`save`."""
        arrays, meta = load_payload(path)
        if meta.get("format") != _FORMAT:
            raise ValueError(
                f"unsupported snapshot format {meta.get('format')!r} "
                f"(this build reads format {_FORMAT})"
            )
        state = {
            k[len(_PARAM_PREFIX):]: v
            for k, v in arrays.items()
            if k.startswith(_PARAM_PREFIX)
        }
        return cls(
            model_name=meta["model_name"],
            dims=[int(d) for d in meta["dims"]],
            dropout=float(meta["dropout"]),
            seed=int(meta["seed"]),
            sampler_name=meta["sampler_name"],
            sampler_config=meta["sampler_config"],
            state=state,
            dataset_name=meta.get("dataset_name"),
        )
