"""Multi-replica serving: front-end router, supervised replicas, autoscaling.

One :class:`~repro.serve.engine.InferenceEngine` (plus its persistent
pool) is a serving *cell*; this module is the horizontal layer that
makes N of them a deployment.  A :class:`ServingCluster` supervises N
replica engines behind a front-end :class:`Router`:

* **Routing** is a policy axis (:data:`ROUTE_POLICIES`):
  ``round_robin`` cycles over ready replicas, ``consistent_hash`` maps
  node ids onto a :class:`HashRing` (stable under membership churn —
  adding/removing a replica remaps only the ring arcs it owns), and
  ``cache_affinity`` probes each replica's
  :class:`~repro.serve.cache.EmbeddingCache` servability
  (``node in cache`` touches no counters) to send a node where its row
  is already warm, with sticky fallback routing and queue-depth spill
  to the least-loaded replica when the favourite backs up.

* **Replicas are supervised resources** with an explicit
  launch → wait(ready) → collect → delete lifecycle
  (:class:`ReplicaHandle`), modeled on a k8s-style scheduler: a
  SIGKILLed replica is reaped (its shared-memory segments unlinked by
  the engine teardown) and relaunched without dropping the cluster,
  while the router simply stops seeing it as ready.

* **Rolling hot-swap** (:meth:`ServingCluster.rolling_reload`) walks
  the replicas one at a time — drain (the router excludes draining
  replicas, so admission control at the edge empties it), reload the
  snapshot through the existing ParamStore channel, optionally probe,
  return to ready.  ``InferPlan.generation`` guarantees every
  replica's ``pool.launches`` stays flat across the swap, asserted
  cluster-wide by the test battery and the CI smoke.

* **Autoscaling** (:meth:`ServingCluster.autoscale`) is driven by the
  workload driver's own signals — shed counts, peak queue depth, SLO
  attainment, utilisation — and deterministic: same report, same
  decision.

Determinism contract: a prediction is a pure function of
``(weights, seed, node)`` — every replica runs the same snapshot and
serve seed, so *where* a request lands cannot change its bits.  The
cluster is therefore bit-identical to a single inline engine for any
replica count and routing policy (locked in by the parity sweep in
``tests/serve/test_serving_cluster.py``).

:func:`run_cluster_workload` drives a whole cluster through the same
virtual-clock workload as the single-engine driver: the Zipf node
stream and Poisson arrival epochs are drawn *once at the edge* (same
RNG draw order as :func:`~repro.serve.workload.run_serving_workload`),
routed into per-replica sub-streams that keep their original arrival
epochs, run per replica, and folded back with
:func:`~repro.serve.workload.merge_replica_reports` — wall-clock (max)
duration, summed cache/transport, concatenated rank columns.
"""

from __future__ import annotations

import bisect
import dataclasses
import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import MetricRegistry
from repro.serve.engine import InferenceEngine
from repro.serve.snapshot import ModelSnapshot
from repro.serve.workload import (
    ServingReport,
    make_refusal_report,
    merge_replica_reports,
    poisson_arrivals,
    zipf_nodes,
)
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "ROUTE_POLICIES",
    "REPLICA_STATES",
    "HashRing",
    "Router",
    "ReplicaHandle",
    "AutoscaleDecision",
    "ClusterRunResult",
    "ServingCluster",
    "run_cluster_workload",
]

#: front-end routing policies (mirrored by ``ServingSpace.ROUTE_POLICIES``)
ROUTE_POLICIES = ("round_robin", "consistent_hash", "cache_affinity")

#: replica lifecycle states (launch → wait → collect → delete)
REPLICA_STATES = ("stopped", "starting", "ready", "draining", "failed")


def _stable_hash(key) -> int:
    """64-bit keyed-nowhere blake2b of ``str(key)`` — process-stable.

    Python's builtin ``hash`` is salted per process (PYTHONHASHSEED),
    which would make ring placement differ between runs and across the
    router/test boundary; blake2b gives the same point for the same key
    everywhere, forever.
    """
    digest = hashlib.blake2b(str(key).encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Consistent hashing over replica ids with virtual nodes.

    Each member owns ``points_per_member`` pseudo-random points on a
    64-bit ring; a key routes to the owner of the first point at or
    after its own hash (wrapping).  Membership changes remap only the
    arcs the changed member owned — the property that keeps a warm
    replica cache useful across an autoscale step — and placement is
    process-stable (:func:`_stable_hash`, not the salted builtin).
    """

    def __init__(self, members=(), *, points_per_member: int = 64):
        check_positive_int(points_per_member, "points_per_member")
        self.points_per_member = points_per_member
        self._hashes: list[int] = []  # sorted ring positions
        self._owners: list = []  # member owning _hashes[i]
        self._members: set = set()
        for member in members:
            self.add(member)

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, member) -> bool:
        return member in self._members

    def members(self) -> list:
        return sorted(self._members)

    def _points(self, member) -> list[int]:
        return [
            _stable_hash(f"{member}#{v}") for v in range(self.points_per_member)
        ]

    def add(self, member) -> None:
        if member in self._members:
            return
        self._members.add(member)
        for h in self._points(member):
            i = bisect.bisect_left(self._hashes, h)
            self._hashes.insert(i, h)
            self._owners.insert(i, member)

    def remove(self, member) -> None:
        if member not in self._members:
            return
        self._members.discard(member)
        keep = [(h, m) for h, m in zip(self._hashes, self._owners) if m != member]
        self._hashes = [h for h, _ in keep]
        self._owners = [m for _, m in keep]

    def lookup(self, key):
        """The member owning ``key``'s arc; raises when the ring is empty."""
        if not self._hashes:
            raise ValueError("cannot look up on an empty hash ring")
        i = bisect.bisect_right(self._hashes, _stable_hash(key))
        if i == len(self._hashes):
            i = 0  # wrap past the highest point
        return self._owners[i]


class Router:
    """Front-end request router over the cluster's ready replicas.

    Stateless per request except for the policy's own memory: the
    round-robin cursor, the consistent-hash ring (rebuilt only when the
    ready membership actually changes), and cache-affinity's sticky
    ``node -> replica`` map.  ``route_many`` is the admission edge: it
    self-accounts per-replica queue depth over the burst it is routing,
    and under ``cache_affinity`` spills a request to the least-loaded
    ready replica when its favourite is more than ``spill_threshold``
    requests deeper than the shallowest queue (``reroutes`` counts the
    spills).  Deterministic throughout: same nodes, same replica
    states, same assignment.
    """

    POLICIES = ROUTE_POLICIES

    def __init__(self, policy: str = "round_robin", *, spill_threshold: int | None = 16):
        if policy not in ROUTE_POLICIES:
            raise ValueError(
                f"route_policy must be one of {ROUTE_POLICIES}, got {policy!r}"
            )
        if spill_threshold is not None:
            check_positive_int(spill_threshold, "spill_threshold")
        self.policy = policy
        self.spill_threshold = spill_threshold
        self.reroutes = 0
        self._rr_next = 0
        self._sticky: dict[int, int] = {}
        self._ring: HashRing | None = None
        self._ring_members: tuple = ()

    def _ring_for(self, members: list[int]) -> HashRing:
        key = tuple(members)
        if key != self._ring_members:
            self._ring = HashRing(members)
            self._ring_members = key
        return self._ring

    def route_many(self, node_seq, handles) -> np.ndarray:
        """Assign each node in ``node_seq`` to a ready replica index."""
        ready = [h for h in handles if h.state == "ready"]
        if not ready:
            raise RuntimeError("router has no ready replicas to route to")
        members = [h.index for h in ready]
        by_index = {h.index: h for h in ready}
        depths = {m: 0 for m in members}
        node_seq = np.atleast_1d(np.asarray(node_seq, dtype=np.int64))
        assignment = np.empty(len(node_seq), dtype=np.int64)
        for i, node in enumerate(node_seq):
            node = int(node)
            if self.policy == "round_robin":
                target = members[self._rr_next % len(members)]
                self._rr_next += 1
            elif self.policy == "consistent_hash":
                target = self._ring_for(members).lookup(node)
            else:  # cache_affinity
                target = None
                for h in ready:
                    if node in h.engine.cache:  # servability probe, no counters
                        target = h.index
                        break
                if target is None:
                    target = self._sticky.get(node)
                    if target not in by_index:
                        target = self._ring_for(members).lookup(node)
                if (
                    self.spill_threshold is not None
                    and depths[target] - min(depths.values()) > self.spill_threshold
                ):
                    # queue-depth feedback: the favourite is backed up —
                    # spill to the least-loaded ready replica (ties to
                    # the lowest index, keeping the choice deterministic)
                    target = min(depths, key=lambda m: (depths[m], m))
                    self.reroutes += 1
                self._sticky[node] = target
            depths[target] += 1
            assignment[i] = target
        return assignment


class ReplicaHandle:
    """One supervised replica: engine + lifecycle state + restart count.

    The lifecycle mirrors a k8s-style resource scheduler: ``launch``
    builds the engine and waits for readiness (``warm_up`` pays the
    pool fork up front), ``collect`` snapshots its health document,
    ``delete`` tears it down (the engine unlinks its shared-memory
    segments), and ``restart`` is collect-free delete + launch — the
    crash path that reaps a SIGKILLed replica without dropping the
    cluster.
    """

    def __init__(self, index: int, factory):
        self.index = int(index)
        self._factory = factory
        self.engine: InferenceEngine | None = None
        self.state = "stopped"
        self.restarts = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReplicaHandle(index={self.index}, state={self.state!r})"

    @property
    def launches(self) -> int:
        """The replica pool's fork count (0 for inline replicas)."""
        if self.engine is None or self.engine.pool is None:
            return 0
        return self.engine.pool.launches

    def launch(self) -> None:
        """Build the engine and bring it to ready (idempotent)."""
        if self.state == "ready":
            return
        self.state = "starting"
        self.engine = self._factory()
        self.engine.warm_up()  # wait: the pool forks here, not mid-burst
        self.state = "ready"

    def check(self) -> bool:
        """Liveness poll: demote a dead ready replica to ``failed``."""
        if self.state == "ready" and (self.engine is None or not self.engine.healthy):
            self.state = "failed"
        return self.state == "ready"

    def collect(self) -> dict:
        """The replica's health document (plain scalars, JSON-safe)."""
        doc = {
            "replica": self.index,
            "state": self.state,
            "restarts": self.restarts,
            "launches": self.launches,
        }
        if self.engine is not None:
            doc["generation"] = self.engine.generation
            doc["graph_generation"] = self.engine.graph_generation
            if self.engine.pool is not None:
                doc["pool"] = self.engine.pool.health()
        return doc

    def delete(self) -> None:
        """Tear the engine down and unlink its segments (idempotent)."""
        if self.engine is not None:
            try:
                self.engine.close()
            finally:
                self.engine = None
        self.state = "stopped"

    def restart(self) -> None:
        """Reap the (possibly crashed) engine and relaunch fresh."""
        self.delete()
        self.restarts += 1
        self.launch()


@dataclass
class AutoscaleDecision:
    """One deterministic autoscale step: what changed and why."""

    action: str  # "up" | "down" | "hold"
    reason: str
    replicas_before: int
    replicas_after: int


@dataclass
class ClusterRunResult:
    """One cluster workload run: merged report + per-replica evidence."""

    #: the cluster-level report (``merge_replica_reports`` semantics:
    #: wall-clock duration, summed cache/transport, request-ordered
    #: ``latencies_s`` scattered back from the replica sub-streams)
    report: ServingReport
    #: replica index -> its segment report (refusal reports included)
    replica_reports: dict[int, ServingReport] = field(default_factory=dict)
    #: request index -> replica index the router chose
    assignments: np.ndarray = field(default=None, repr=False)
    #: replicas restarted by crash supervision during this run
    restarted: list[int] = field(default_factory=list)
    #: requests refused because their replica crashed mid-burst
    refused: int = 0


class ServingCluster:
    """N supervised :class:`InferenceEngine` replicas behind a router.

    Every replica serves the same snapshot with the same serve ``seed``
    (predictions are pure in ``(weights, seed, node)``, so routing can
    never change bits); what differs per replica is *warmth* — its own
    prediction cache, pool, and metrics registry.
    :meth:`metrics_snapshot` re-keys each replica's metrics under a
    ``replica.<i>.`` prefix and folds the cluster totals (counters add,
    gauges fold by their declared policy, histograms merge exactly).

    Owns its replicas: use as a context manager or call :meth:`close`.
    """

    def __init__(
        self,
        snapshot: ModelSnapshot,
        dataset,
        *,
        replicas: int = 2,
        route_policy: str = "round_robin",
        mode: str = "inline",
        batch_mode: str = "per_node",
        shard_policy: str = "chunk",
        workers: int = 1,
        cache_entries: int = 4096,
        seed: int | None = None,
        timeout: float = 120.0,
        start_method: str | None = None,
        staleness_budget: int = 0,
        spill_threshold: int | None = 16,
    ):
        check_positive_int(replicas, "replicas")
        self.snapshot = snapshot
        self.dataset = dataset
        self.mode = mode
        self.batch_mode = batch_mode
        self.shard_policy = shard_policy
        self.workers = workers
        self.cache_entries = cache_entries
        self.seed = int(snapshot.seed if seed is None else seed)
        self.timeout = timeout
        self.start_method = start_method
        self.staleness_budget = staleness_budget
        self.router = Router(route_policy, spill_threshold=spill_threshold)
        #: cluster-level accounting: restarts/refusals/reroutes counters
        #: and high-water gauges, mergeable with the replicas' documents
        self.metrics = MetricRegistry()
        self._closed = False
        self._next_index = 0
        self.replicas: list[ReplicaHandle] = []
        for _ in range(replicas):
            self._add_replica()

    # ------------------------------------------------------------------
    def _build_engine(self) -> InferenceEngine:
        return InferenceEngine(
            self.snapshot,
            self.dataset,
            mode=self.mode,
            batch_mode=self.batch_mode,
            shard_policy=self.shard_policy,
            workers=self.workers,
            cache_entries=self.cache_entries,
            timeout=self.timeout,
            start_method=self.start_method,
            seed=self.seed,
            staleness_budget=self.staleness_budget,
        )

    def _add_replica(self) -> ReplicaHandle:
        handle = ReplicaHandle(self._next_index, self._build_engine)
        self._next_index += 1
        handle.launch()
        self.replicas.append(handle)
        self.metrics.gauge("cluster.replicas").set(float(len(self.replicas)))
        return handle

    # ------------------------------------------------------------------
    @property
    def route_policy(self) -> str:
        return self.router.policy

    def ready_replicas(self) -> list[ReplicaHandle]:
        return [h for h in self.replicas if h.state == "ready"]

    def launches(self) -> list[int]:
        """Per-replica pool fork counts, in replica order (flat = healthy)."""
        return [h.launches for h in self.replicas]

    def health(self) -> list[dict]:
        """Collect every replica's health document (supervision poll)."""
        return [h.collect() for h in self.replicas]

    def check_replicas(self) -> list[int]:
        """Reap-and-relaunch every dead replica; returns restarted indices.

        The supervision loop: a replica whose engine died (SIGKILLed
        worker, broken world) is demoted by :meth:`ReplicaHandle.check`
        and restarted in place — the cluster never drops below its
        configured replica count because of a crash.
        """
        restarted = []
        for handle in self.replicas:
            if not handle.check() and handle.state == "failed":
                handle.restart()
                restarted.append(handle.index)
                self.metrics.counter("cluster.restarts").inc()
        return restarted

    def restart_replica(self, index: int) -> None:
        """Force one replica through delete + launch (counts as a restart)."""
        for handle in self.replicas:
            if handle.index == index:
                handle.restart()
                self.metrics.counter("cluster.restarts").inc()
                return
        raise ValueError(f"no replica with index {index}")

    def warm_up(self) -> None:
        """Bring every replica to ready (launch any stopped ones)."""
        for handle in self.replicas:
            handle.launch()

    # ------------------------------------------------------------------
    def predict(self, node_ids) -> np.ndarray:
        """Route ``node_ids`` across the replicas; rows in request order.

        The parity surface: whatever the policy scattered, the gathered
        result is bit-identical to one engine predicting the same ids.
        """
        if self._closed:
            raise ValueError("serving cluster is closed")
        node_ids = np.atleast_1d(np.asarray(node_ids, dtype=np.int64))
        if node_ids.size == 0:
            return np.zeros((0, self.snapshot.out_dim), dtype=np.float32)
        self.check_replicas()
        assignment = self.router.route_many(node_ids, self.replicas)
        out = np.empty((len(node_ids), self.snapshot.out_dim), dtype=np.float32)
        for handle in self.replicas:
            idx = np.flatnonzero(assignment == handle.index)
            if idx.size == 0:
                continue
            out[idx] = handle.engine.predict(node_ids[idx])
        return out

    # ------------------------------------------------------------------
    def rolling_reload(self, snapshot: ModelSnapshot, *, probe_nodes=None) -> list[dict]:
        """Hot-swap ``snapshot`` into every replica, one at a time.

        Each replica is drained first (the router stops routing to it —
        admission control at the edge), reloaded through the existing
        ParamStore channel (no re-fork: ``pool.launches`` stays flat,
        guaranteed per replica by ``InferPlan.generation``), optionally
        probed with ``probe_nodes`` to force the lazy weight republish
        while still drained, and returned to ready before the next
        replica drains — the cluster always keeps N-1 replicas serving.
        Returns one swap record per replica.
        """
        if self._closed:
            raise ValueError("serving cluster is closed")
        records = []
        for handle in self.replicas:
            handle.check()
            if handle.state != "ready":
                continue
            handle.state = "draining"
            try:
                handle.engine.reload(snapshot)
                if probe_nodes is not None:
                    handle.engine.predict(probe_nodes)
            finally:
                handle.state = "ready"
            records.append(
                {
                    "replica": handle.index,
                    "generation": handle.engine.generation,
                    "launches": handle.launches,
                }
            )
        self.snapshot = snapshot
        return records

    # ------------------------------------------------------------------
    def autoscale(
        self,
        min_replicas: int,
        max_replicas: int,
        report: ServingReport | None = None,
        *,
        slo_ms: float | None = None,
        slo_target: float = 0.99,
        queue_high: int = 16,
        util_low: float = 0.25,
    ) -> AutoscaleDecision:
        """One deterministic scale step within ``[min_replicas, max_replicas]``.

        Scale-up pressure, in priority order, read off the last run's
        report: requests were shed, the peak queue crossed
        ``queue_high``, or SLO attainment at ``slo_ms`` fell below
        ``slo_target``.  Scale-down needs slack: utilisation —
        ``service_s`` over ``duration_s`` summed across the current
        replicas — under ``util_low``.  One replica moves per call
        (classic hysteresis against flapping); clamping to the bounds
        also repairs a cluster that starts outside them.
        """
        if self._closed:
            raise ValueError("serving cluster is closed")
        check_positive_int(min_replicas, "min_replicas")
        check_positive_int(max_replicas, "max_replicas")
        if max_replicas < min_replicas:
            raise ValueError("max_replicas must be >= min_replicas")
        before = len(self.replicas)
        action, reason = "hold", "signals within band"
        if before < min_replicas:
            action, reason = "up", f"below min_replicas={min_replicas}"
        elif before > max_replicas:
            action, reason = "down", f"above max_replicas={max_replicas}"
        elif report is not None:
            utilisation = (
                report.service_s / (report.duration_s * before)
                if report.duration_s > 0
                else 0.0
            )
            if report.shed_count > 0 and before < max_replicas:
                action, reason = "up", f"shed_count={report.shed_count}"
            elif report.max_queue > queue_high and before < max_replicas:
                action, reason = "up", f"max_queue={report.max_queue} > {queue_high}"
            elif (
                slo_ms is not None
                and report.slo_attainment(slo_ms) < slo_target
                and before < max_replicas
            ):
                action = "up"
                reason = (
                    f"slo_attainment={report.slo_attainment(slo_ms):.3f} "
                    f"< {slo_target}"
                )
            elif utilisation < util_low and before > min_replicas:
                action, reason = "down", f"utilisation={utilisation:.3f} < {util_low}"
        if action == "up":
            self._add_replica()
        elif action == "down":
            victim = self.replicas.pop()  # newest replica drains first
            victim.delete()
            self.metrics.gauge("cluster.replicas").set(float(len(self.replicas)))
        return AutoscaleDecision(
            action=action,
            reason=reason,
            replicas_before=before,
            replicas_after=len(self.replicas),
        )

    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """One document: per-replica metrics re-keyed + cluster fold.

        Replica registries are merged into a cluster-total view
        (counters/histograms add, gauges fold by their declared policy
        — merge-order independent by the Gauge contract), emitted under
        ``cluster.`` names, while every per-replica instrument also
        appears verbatim under its ``replica.<i>.`` prefix.
        """
        folded = MetricRegistry()
        folded.merge(self.metrics.snapshot())
        out: dict = {}
        for handle in self.replicas:
            if handle.engine is None:
                continue
            doc = handle.engine.metrics.snapshot()
            folded.merge(doc)
            for name, snap in doc["metrics"].items():
                out[f"replica.{handle.index}.{name}"] = snap
        cluster_doc = folded.snapshot()
        for name, snap in cluster_doc["metrics"].items():
            prefix = "" if name.startswith("cluster.") else "cluster."
            out[f"{prefix}{name}"] = snap
        return {"schema_version": cluster_doc["schema_version"], "metrics": out}

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Delete every replica (idempotent)."""
        self._closed = True
        for handle in self.replicas:
            handle.delete()

    def __enter__(self) -> "ServingCluster":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_cluster_workload(
    cluster: ServingCluster,
    *,
    num_requests: int = 256,
    rate_rps: float = 500.0,
    zipf_alpha: float = 1.1,
    max_batch: int = 8,
    max_wait_ms: float = 2.0,
    queue_limit: int | None = None,
    nodes: np.ndarray | None = None,
    node_sequence: np.ndarray | None = None,
    service_model: str = "wall",
    seed: int = 0,
) -> ClusterRunResult:
    """Drive the whole cluster through one open-loop workload.

    The node stream and Poisson arrival epochs are drawn **once at the
    edge** — same RNG derivation and draw order as the single-engine
    driver, so replica count and routing policy cannot perturb the
    traffic — then routed into per-replica sub-streams that keep their
    original arrival epochs (``arrival_times`` slice), run through
    :func:`~repro.serve.workload.run_serving_workload` per replica, and
    folded with :func:`~repro.serve.workload.merge_replica_reports`:
    wall-clock (max) duration under the merged throughput, summed
    cache/transport, concatenated per-rank columns.

    Crash supervision is in-line: a replica whose engine dies mid-burst
    contributes an all-shed refusal segment (its share of the burst is
    refused, counted in ``shed_count`` and as SLO misses), is reaped and
    relaunched, and the other replicas' segments are unaffected.  The
    merged report's ``latencies_s`` is scattered back to *request*
    order, so SLO accounting reads exactly like a single-engine run.
    """
    check_positive_int(num_requests, "num_requests")
    from repro.serve.workload import run_serving_workload  # cycle-free, clarity

    cluster.check_replicas()
    # -- edge draw: identical derivation + order to the single driver --
    rng = derive_rng(seed, "serve-workload")
    if nodes is None:
        nodes = cluster.dataset.val_idx
        if len(nodes) == 0:
            nodes = np.arange(cluster.dataset.num_nodes, dtype=np.int64)
    if node_sequence is not None:
        node_seq = np.asarray(node_sequence, dtype=np.int64)
        if len(node_seq) != num_requests:
            raise ValueError(
                f"node_sequence holds {len(node_seq)} entries, expected {num_requests}"
            )
    else:
        node_seq = zipf_nodes(nodes, num_requests, alpha=zipf_alpha, rng=rng)
    times = poisson_arrivals(num_requests, rate_rps, rng=rng)

    assignment = cluster.router.route_many(node_seq, cluster.replicas)
    segments: list[ServingReport] = []
    replica_reports: dict[int, ServingReport] = {}
    slices: list[tuple[np.ndarray, ServingReport]] = []
    restarted: list[int] = []
    refused = 0
    for handle in list(cluster.replicas):
        idx = np.flatnonzero(assignment == handle.index)
        if idx.size == 0:
            continue
        try:
            segment = run_serving_workload(
                handle.engine,
                num_requests=int(idx.size),
                rate_rps=rate_rps,
                zipf_alpha=zipf_alpha,
                max_batch=max_batch,
                max_wait_ms=max_wait_ms,
                queue_limit=queue_limit,
                nodes=nodes,
                node_sequence=node_seq[idx],
                arrival_times=times[idx],
                service_model=service_model,
                seed=seed,
            )
        except Exception:
            # the replica died mid-burst: its share of the stream is
            # refused (all-shed segment), the replica is reaped and
            # relaunched, and the rest of the cluster keeps serving
            segment = make_refusal_report(cluster.mode, int(idx.size))
            refused += int(idx.size)
            cluster.metrics.counter("cluster.refusals").inc(int(idx.size))
            handle.state = "failed"
            handle.restart()
            restarted.append(handle.index)
            cluster.metrics.counter("cluster.restarts").inc()
        segments.append(segment)
        replica_reports[handle.index] = segment
        slices.append((idx, segment))

    report = merge_replica_reports(segments)
    if len(segments) == 1:
        # a single-segment merge returns the segment itself — copy before
        # rewriting latencies so the per-replica report stays untouched
        report = dataclasses.replace(report)
    # scatter per-replica latencies back to request order so the merged
    # report reads exactly like a single-engine run of the same stream
    latencies = np.full(num_requests, np.nan, dtype=np.float64)
    for idx, segment in slices:
        if segment.latencies_s is not None:
            latencies[idx] = segment.latencies_s
    report.latencies_s = latencies
    cluster.metrics.counter("cluster.requests").inc(num_requests)
    cluster.metrics.gauge("cluster.max_queue").set(float(report.max_queue))
    return ClusterRunResult(
        report=report,
        replica_reports=replica_reports,
        assignments=assignment,
        restarted=restarted,
        refused=refused,
    )
