"""Deadline-aware micro-batching of per-node inference requests.

Online requests arrive one node at a time; executing them singly wastes
the engine's per-dispatch overhead (IPC round to the worker pool, cache
bookkeeping), while waiting indefinitely to fill large batches ruins
tail latency.  The :class:`MicroBatcher` implements the standard
compromise: coalesce requests until either ``max_batch`` are pending
(**full flush**) or the *oldest* pending request has waited
``max_wait_ms`` (**deadline flush**) — the two knobs the serving
autotuner searches.

The batcher is deliberately clock-agnostic: every method takes ``now``
explicitly, so the same code runs under the workload driver's virtual
clock (deterministic benches), a real-time loop, and the deadline-
semantics tests, which drive bursty arrival patterns directly.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

__all__ = ["Request", "BatchStats", "MicroBatcher"]


@dataclass(frozen=True)
class Request:
    """One inference request: which node, and when it arrived."""

    id: int
    node: int
    arrival: float


@dataclass
class BatchStats:
    """Flush accounting over a :class:`MicroBatcher`'s lifetime."""

    requests: int = 0
    batches: int = 0
    #: flushes triggered by a full batch (``max_batch`` pending)
    full_flushes: int = 0
    #: flushes triggered by the oldest request's deadline
    deadline_flushes: int = 0
    #: forced end-of-stream flushes (see :meth:`MicroBatcher.pop`)
    drain_flushes: int = 0
    #: requests dropped by admission control (:meth:`MicroBatcher.shed_oldest`)
    shed: int = 0

    @property
    def mean_batch(self) -> float:
        return self.requests / self.batches if self.batches else 0.0


class MicroBatcher:
    """FIFO request coalescer under ``max_batch`` / ``max_wait_ms``.

    Protocol: :meth:`submit` requests as they arrive, poll :meth:`ready`
    (or schedule on :meth:`next_deadline`), then :meth:`pop` a batch of
    at most ``max_batch`` requests in arrival order.  ``max_wait_ms=0``
    degenerates to flush-on-first-poll (every request is its own
    deadline), ``max_batch=1`` to no coalescing at all.

    Pass ``metrics`` (a :class:`~repro.obs.metrics.MetricRegistry`) to
    mirror the :class:`BatchStats` counters into ``serve.batcher.*``
    instruments plus a ``serve.batcher.batch_size`` histogram — the
    instruments are created up front so the per-flush path only
    increments.
    """

    def __init__(self, max_batch: int, max_wait_ms: float, *, metrics=None):
        if int(max_batch) < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if float(max_wait_ms) < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.max_batch = int(max_batch)
        self.max_wait = float(max_wait_ms) / 1e3  # seconds, like the clocks
        self.stats = BatchStats()
        self._pending: deque[Request] = deque()
        if metrics is not None:
            self._m_flush = {
                cause: metrics.counter(f"serve.batcher.{cause}_flushes")
                for cause in ("full", "deadline", "drain")
            }
            self._m_shed = metrics.counter("serve.batcher.shed")
            # batch sizes live in [1, max_batch]: positive-exponent buckets
            self._m_size = metrics.histogram(
                "serve.batcher.batch_size", lo_exp=0, hi_exp=12
            )
        else:
            self._m_flush = None
            self._m_shed = None
            self._m_size = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._pending)

    def submit(self, request: Request) -> None:
        self._pending.append(request)

    def shed_oldest(self) -> Request:
        """Drop and return the oldest pending request (admission control).

        The shed-oldest policy: when a bounded queue overflows, the
        request that has already waited longest — and is therefore the
        most likely to miss its SLO anyway — is sacrificed for the
        freshest arrival.  The caller owns the refusal (error response,
        ``ServingReport.shed_count``); the batcher only counts it.
        """
        if not self._pending:
            raise ValueError("shed_oldest() on an empty batcher")
        self.stats.shed += 1
        if self._m_shed is not None:
            self._m_shed.inc()
        return self._pending.popleft()

    def next_deadline(self) -> float | None:
        """When the oldest pending request must flush (None when empty)."""
        if not self._pending:
            return None
        return self._pending[0].arrival + self.max_wait

    def ready(self, now: float) -> bool:
        """Whether a batch should flush at time ``now``."""
        if len(self._pending) >= self.max_batch:
            return True
        return bool(self._pending) and now >= self.next_deadline()

    def pop(self, now: float, *, drain: bool = False) -> list[Request]:
        """Remove and return the next batch (arrival order, ≤ ``max_batch``).

        Requires :meth:`ready` unless ``drain`` forces an end-of-stream
        flush of whatever is pending.  The flush cause is recorded in
        :attr:`stats` — full beats deadline beats drain, matching the
        trigger precedence in :meth:`ready`.
        """
        if not self._pending:
            raise ValueError("pop() on an empty batcher")
        full = len(self._pending) >= self.max_batch
        if not full and not drain and now < self.next_deadline():
            raise ValueError(
                f"batch not ready at t={now:.6f} (deadline "
                f"{self.next_deadline():.6f}, {len(self._pending)} pending)"
            )
        batch = [self._pending.popleft() for _ in range(min(self.max_batch, len(self._pending)))]
        self.stats.requests += len(batch)
        self.stats.batches += 1
        if full:
            cause = "full"
            self.stats.full_flushes += 1
        elif now >= batch[0].arrival + self.max_wait:
            cause = "deadline"
            self.stats.deadline_flushes += 1
        else:
            cause = "drain"
            self.stats.drain_flushes += 1
        if self._m_flush is not None:
            self._m_flush[cause].inc()
            self._m_size.observe(float(len(batch)))
        return batch
