"""Shared-frontier batched inference: one vectorised forward per micro-batch.

The per-node serving path (:func:`repro.serve.engine.predict_nodes`)
forwards every request alone — bit-exact and cache-friendly, but each
request pays the full Python/op overhead of an ``L``-layer forward on a
tiny graph.  The frontier path amortises that twice over: the per-node
frontiers (each still drawn from its own ``derive_rng(seed, "serve",
node)`` stream, so *the sampled subgraphs are unchanged*) are produced
by one fused multi-seed sampling pass
(:meth:`~repro.sampling.base.Sampler.sample_merged`, vectorised for the
neighbor/shadow samplers in :mod:`repro.sampling.batch`) that emits the
block-diagonal union per layer directly, and the whole micro-batch then
runs through a single model forward.

Numerics contract
-----------------
Merged predictions are **bit-identical** to per-node inference, by
construction rather than by tolerance:

* every request keeps its own rows — frontiers are *not* deduplicated
  across requests, because two requests sampling the same node draw
  different neighbour multisets from their per-node RNG streams.  Each
  destination row therefore aggregates exactly the neighbour multiset
  its solo forward would have, through per-request segment offsets into
  the merged edge list (``Block.src_splits`` / ``dst_splits``);
* the fused sampler consumes each node's RNG stream in the exact
  per-node draw order (one ``rng.random(deg_sum)`` per node per layer —
  the draw-order contract in :mod:`repro.sampling.batch`), so the
  sampled frontiers themselves are bit-identical to looped per-node
  sampling;
* scatter/gather/segment reductions (:mod:`repro.gnn.aggregate`,
  :func:`repro.gnn.segment.segment_softmax`) accumulate per destination
  row in edge order, and merged edges stay request-contiguous in their
  original order — identical partial-sum order per row;
* dense projections go through the segmented matmul
  (:func:`repro.autograd.ops.matmul` with ``row_splits``): one BLAS call
  per request segment, reproducing the solo call geometry exactly.  One
  big product would *not* be bit-stable — BLAS picks different kernels
  and accumulation orders for different row counts.

What remains shared is everything Python: one sampling pass and one op
graph per layer instead of one per request, one feature gather, one
scatter-add over the union edge list.
``bench_fig10_frontier_batching`` records the resulting service-time
reduction and its per-phase breakdown.
"""

from __future__ import annotations

import time

import numpy as np

from repro.autograd.ops import gather_rows
from repro.autograd.tensor import Tensor, inference_mode
from repro.obs.trace import NULL_RECORDER, SPAN_FORWARD, SPAN_MERGE, SPAN_SAMPLE
from repro.sampling.batch import MergedFrontier, merge_frontiers, validate_merged
from repro.utils.rng import derive_rng

__all__ = [
    "MergedFrontier",
    "merge_frontiers",
    "validate_merged",
    "predict_frontier",
    "empty_predictions",
    "SHARD_POLICIES",
    "plan_shards",
    "segment_bins",
    "steal_order",
]

#: how a pool micro-batch's requests map onto ranks — ``chunk`` splits by
#: request index (the historical layout), ``size_binned`` LPT-packs by
#: sampled frontier cost, ``steal`` adds run-time segment stealing on top
#: of the size-binned plan.  Any policy is bit-identical to any other:
#: predictions are per-request pure functions of ``(weights, seed, node)``
#: (per-request RNG streams + segment-local ``row_splits`` BLAS calls), so
#: the assignment only moves work, never changes it.
SHARD_POLICIES = ("chunk", "size_binned", "steal")


def plan_shards(
    num_requests: int,
    num_ranks: int,
    *,
    policy: str = "chunk",
    costs: np.ndarray | None = None,
) -> list[np.ndarray]:
    """Assign request positions ``0..num_requests`` to ``num_ranks`` bins.

    ``chunk`` reproduces the historical ``np.array_split`` layout exactly
    (contiguous, near-equal *counts*).  ``size_binned`` (and ``steal``,
    which starts from the same bins) runs LPT greedy bin-packing over
    ``costs``: requests sorted by descending cost, each assigned to the
    currently lightest bin — the classic 4/3-approximation to minimum
    makespan.  Bins keep their assignment order (descending cost), so a
    bin's tail is its cheapest work — the natural grain for stealing.

    Returns one ``int64`` index array per rank; the arrays partition
    ``arange(num_requests)`` exactly, whatever the policy — reassembly
    scatters each bin's result rows back through its index array.
    Deterministic: ties break by request position (stable sort) and by
    lowest rank id, so the same inputs always produce the same plan.
    """
    if policy not in SHARD_POLICIES:
        raise ValueError(
            f"unknown shard policy {policy!r}; known: {SHARD_POLICIES}"
        )
    num_ranks = max(1, int(num_ranks))
    positions = np.arange(num_requests, dtype=np.int64)
    if policy == "chunk" or num_ranks == 1:
        return list(np.array_split(positions, num_ranks))
    if costs is None:
        costs = np.ones(num_requests, dtype=np.float64)
    costs = np.asarray(costs, dtype=np.float64)
    if len(costs) != num_requests:
        raise ValueError(
            f"costs carries {len(costs)} entries for {num_requests} requests"
        )
    order = np.argsort(-costs, kind="stable")
    loads = np.zeros(num_ranks, dtype=np.float64)
    bins: list[list[int]] = [[] for _ in range(num_ranks)]
    for pos in order:
        rank = int(np.argmin(loads))  # argmin ties break to lowest rank
        bins[rank].append(int(pos))
        loads[rank] += costs[pos]
    return [np.asarray(b, dtype=np.int64) for b in bins]


def segment_bins(
    bins: list[np.ndarray], costs: np.ndarray | None, *, grain: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Cut per-rank bins into stealable segments of ``<= grain`` requests.

    Returns ``(order, seg_splits, rank_splits, bin_weights)``:
    ``order`` is the bin-concatenated permutation of request positions,
    ``seg_splits`` delimits segments inside ``order``, ``rank_splits``
    delimits each rank's contiguous segment range, and ``bin_weights``
    is each bin's total cost (the steal-priority signal — drained ranks
    raid the heaviest peer first).  Segments never straddle bins, so a
    stolen segment is whole requests from exactly one victim.
    """
    grain = max(1, int(grain))
    order = (
        np.concatenate(bins)
        if bins
        else np.zeros(0, dtype=np.int64)
    )
    seg_bounds = [0]
    rank_splits = np.zeros(len(bins) + 1, dtype=np.int64)
    base = 0
    for rank, b in enumerate(bins):
        for start in range(0, len(b), grain):
            seg_bounds.append(base + min(start + grain, len(b)))
        base += len(b)
        rank_splits[rank + 1] = len(seg_bounds) - 1
    seg_splits = np.asarray(seg_bounds, dtype=np.int64)
    if costs is None:
        bin_weights = np.asarray([float(len(b)) for b in bins])
    else:
        costs = np.asarray(costs, dtype=np.float64)
        bin_weights = np.asarray([float(costs[b].sum()) for b in bins])
    return order, seg_splits, rank_splits, bin_weights


def steal_order(
    rank: int, rank_splits: np.ndarray, bin_weights: np.ndarray
) -> np.ndarray:
    """Rank ``rank``'s claim-priority walk over every segment.

    Own segments first in plan order (LPT put the expensive requests at
    the bin's head), then each peer's segments — heaviest peer first,
    peer segments from the *tail* (the victim works head-to-tail, the
    thief steals tail-to-head, so contention concentrates only when the
    bin is nearly drained).  Every rank's walk covers all segments, so
    the batch completes even if peers die mid-claim or never start.
    Deterministic per rank: ties in peer weight break by rank id.
    """
    rank_splits = np.asarray(rank_splits, dtype=np.int64)
    own = np.arange(rank_splits[rank], rank_splits[rank + 1], dtype=np.int64)
    n = len(rank_splits) - 1
    peers = [p for p in range(n) if p != rank]
    # descending weight, ties by rank id (stable sort over -weight)
    peers.sort(key=lambda p: (-float(bin_weights[p]), p))
    tails = [
        np.arange(rank_splits[p + 1] - 1, rank_splits[p] - 1, -1, dtype=np.int64)
        for p in peers
    ]
    return np.concatenate([own] + tails) if tails else own


def empty_predictions(model) -> np.ndarray:
    """The ``(0, out_dim)`` result an empty serving request maps to.

    The empty-input shape must match a non-empty request's output width
    so callers can concatenate/stack results unconditionally; every
    model exposes its layer widths as ``model.dims``.
    """
    dims = getattr(model, "dims", None)
    width = int(dims[-1]) if dims else 0
    return np.zeros((0, width), dtype=np.float32)


def predict_frontier(
    model,
    graph,
    features: Tensor,
    sampler,
    node_ids,
    *,
    seed: int,
    phases=None,
    recorder=NULL_RECORDER,
) -> np.ndarray:
    """Frontier-batched counterpart of :func:`~repro.serve.engine.predict_nodes`.

    Samples the whole micro-batch in one fused pass — each node still
    draws from its own ``(seed, "serve", node)`` stream, identical to
    the per-node path — and runs one model forward over the merged
    union.  Bit-identical to per-node inference (see the module
    docstring); returns one row per node.  ``phases`` (a
    :class:`~repro.utils.phases.PhaseStats`) receives the
    sample/merge/forward time split; an enabled ``recorder`` gets
    sample/merge/forward spans (the sample/merge boundary inside the
    fused pass is reconstructed from the phase counters' delta, since
    the pass measures its own split internally).
    """
    node_ids = np.asarray(node_ids, dtype=np.int64)
    if node_ids.size == 0:
        return empty_predictions(model)
    was_training = model.training
    model.eval()
    try:
        with inference_mode():
            if recorder.enabled and phases is not None:
                sample_before = phases.sample_s
            rngs = [derive_rng(seed, "serve", int(node)) for node in node_ids]
            t0 = time.perf_counter() if recorder.enabled else 0.0
            merged = sampler.sample_merged(
                graph,
                [node_ids[i : i + 1] for i in range(len(node_ids))],
                rngs,
                phases=phases,
            )
            start = time.perf_counter()
            x = gather_rows(features, merged.input_ids)
            out = model(merged.blocks, x)
            if phases is not None or recorder.enabled:
                end = time.perf_counter()
                if phases is not None:
                    phases.forward_s += end - start
                if recorder.enabled:
                    if phases is not None:
                        split = min(start, t0 + (phases.sample_s - sample_before))
                        recorder.record(SPAN_SAMPLE, t0, split, len(node_ids))
                        recorder.record(SPAN_MERGE, split, start, len(node_ids))
                    else:
                        recorder.record(SPAN_SAMPLE, t0, start, len(node_ids))
                    recorder.record(SPAN_FORWARD, start, end, len(node_ids))
    finally:
        model.train(was_training)
    return np.array(out.data, copy=True)