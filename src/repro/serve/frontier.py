"""Shared-frontier batched inference: one vectorised forward per micro-batch.

The per-node serving path (:func:`repro.serve.engine.predict_nodes`)
forwards every request alone — bit-exact and cache-friendly, but each
request pays the full Python/op overhead of an ``L``-layer forward on a
tiny graph.  The frontier path amortises that twice over: the per-node
frontiers (each still drawn from its own ``derive_rng(seed, "serve",
node)`` stream, so *the sampled subgraphs are unchanged*) are produced
by one fused multi-seed sampling pass
(:meth:`~repro.sampling.base.Sampler.sample_merged`, vectorised for the
neighbor/shadow samplers in :mod:`repro.sampling.batch`) that emits the
block-diagonal union per layer directly, and the whole micro-batch then
runs through a single model forward.

Numerics contract
-----------------
Merged predictions are **bit-identical** to per-node inference, by
construction rather than by tolerance:

* every request keeps its own rows — frontiers are *not* deduplicated
  across requests, because two requests sampling the same node draw
  different neighbour multisets from their per-node RNG streams.  Each
  destination row therefore aggregates exactly the neighbour multiset
  its solo forward would have, through per-request segment offsets into
  the merged edge list (``Block.src_splits`` / ``dst_splits``);
* the fused sampler consumes each node's RNG stream in the exact
  per-node draw order (one ``rng.random(deg_sum)`` per node per layer —
  the draw-order contract in :mod:`repro.sampling.batch`), so the
  sampled frontiers themselves are bit-identical to looped per-node
  sampling;
* scatter/gather/segment reductions (:mod:`repro.gnn.aggregate`,
  :func:`repro.gnn.segment.segment_softmax`) accumulate per destination
  row in edge order, and merged edges stay request-contiguous in their
  original order — identical partial-sum order per row;
* dense projections go through the segmented matmul
  (:func:`repro.autograd.ops.matmul` with ``row_splits``): one BLAS call
  per request segment, reproducing the solo call geometry exactly.  One
  big product would *not* be bit-stable — BLAS picks different kernels
  and accumulation orders for different row counts.

What remains shared is everything Python: one sampling pass and one op
graph per layer instead of one per request, one feature gather, one
scatter-add over the union edge list.
``bench_fig10_frontier_batching`` records the resulting service-time
reduction and its per-phase breakdown.
"""

from __future__ import annotations

import time

import numpy as np

from repro.autograd.ops import gather_rows
from repro.autograd.tensor import Tensor, inference_mode
from repro.sampling.batch import MergedFrontier, merge_frontiers, validate_merged
from repro.utils.rng import derive_rng

__all__ = [
    "MergedFrontier",
    "merge_frontiers",
    "validate_merged",
    "predict_frontier",
    "empty_predictions",
]


def empty_predictions(model) -> np.ndarray:
    """The ``(0, out_dim)`` result an empty serving request maps to.

    The empty-input shape must match a non-empty request's output width
    so callers can concatenate/stack results unconditionally; every
    model exposes its layer widths as ``model.dims``.
    """
    dims = getattr(model, "dims", None)
    width = int(dims[-1]) if dims else 0
    return np.zeros((0, width), dtype=np.float32)


def predict_frontier(
    model, graph, features: Tensor, sampler, node_ids, *, seed: int, phases=None
) -> np.ndarray:
    """Frontier-batched counterpart of :func:`~repro.serve.engine.predict_nodes`.

    Samples the whole micro-batch in one fused pass — each node still
    draws from its own ``(seed, "serve", node)`` stream, identical to
    the per-node path — and runs one model forward over the merged
    union.  Bit-identical to per-node inference (see the module
    docstring); returns one row per node.  ``phases`` (a
    :class:`~repro.utils.phases.PhaseStats`) receives the
    sample/merge/forward time split.
    """
    node_ids = np.asarray(node_ids, dtype=np.int64)
    if node_ids.size == 0:
        return empty_predictions(model)
    was_training = model.training
    model.eval()
    try:
        with inference_mode():
            rngs = [derive_rng(seed, "serve", int(node)) for node in node_ids]
            merged = sampler.sample_merged(
                graph,
                [node_ids[i : i + 1] for i in range(len(node_ids))],
                rngs,
                phases=phases,
            )
            start = time.perf_counter()
            x = gather_rows(features, merged.input_ids)
            out = model(merged.blocks, x)
            if phases is not None:
                phases.forward_s += time.perf_counter() - start
    finally:
        model.train(was_training)
    return np.array(out.data, copy=True)