"""Shared-frontier batched inference: one vectorised forward per micro-batch.

The per-node serving path (:func:`repro.serve.engine.predict_nodes`)
forwards every request alone — bit-exact and cache-friendly, but each
request pays the full Python/op overhead of an ``L``-layer forward on a
tiny graph.  The frontier merger amortises that: the per-node sampled
frontiers (each still drawn from its own ``derive_rng(seed, "serve",
node)`` stream, so *sampling is unchanged*) are concatenated into one
block-diagonal union per layer, and the whole micro-batch runs through a
single model forward.

Numerics contract
-----------------
Merged predictions are **bit-identical** to per-node inference, by
construction rather than by tolerance:

* every request keeps its own rows — frontiers are *not* deduplicated
  across requests, because two requests sampling the same node draw
  different neighbour multisets from their per-node RNG streams.  Each
  destination row therefore aggregates exactly the neighbour multiset
  its solo forward would have, through per-request segment offsets into
  the merged edge list (``Block.src_splits`` / ``dst_splits``);
* scatter/gather/segment reductions (:mod:`repro.gnn.aggregate`,
  :func:`repro.gnn.segment.segment_softmax`) accumulate per destination
  row in edge order, and merged edges stay request-contiguous in their
  original order — identical partial-sum order per row;
* dense projections go through the segmented matmul
  (:func:`repro.autograd.ops.matmul` with ``row_splits``): one BLAS call
  per request segment, reproducing the solo call geometry exactly.  One
  big product would *not* be bit-stable — BLAS picks different kernels
  and accumulation orders for different row counts.

What remains shared is everything Python: one op graph per layer instead
of one per request, one feature gather, one scatter-add over the union
edge list.  ``bench_fig10_frontier_batching`` records the resulting
service-time reduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.autograd.ops import gather_rows
from repro.autograd.tensor import Tensor, inference_mode
from repro.sampling.block import Block, MiniBatch
from repro.utils.rng import derive_rng

__all__ = ["MergedFrontier", "merge_frontiers", "validate_merged", "predict_frontier"]


@dataclass
class MergedFrontier:
    """One micro-batch's union subgraph plus its per-request bookkeeping.

    ``blocks`` satisfy the model-forward chain exactly like a single
    request's blocks do (layer ``l``'s merged destination rows are layer
    ``l+1``'s merged source rows); ``request_rows`` maps request ``k`` to
    its output-row range ``[request_rows[k], request_rows[k + 1])`` of
    the final layer — one row per request for single-node serving.
    """

    blocks: list[Block]
    seeds: np.ndarray
    request_rows: np.ndarray

    @property
    def num_requests(self) -> int:
        return len(self.request_rows) - 1

    @property
    def input_ids(self) -> np.ndarray:
        """Global ids whose raw features feed the first merged layer."""
        return self.blocks[0].src_ids

    @property
    def total_src_nodes(self) -> int:
        return sum(b.num_src for b in self.blocks)


def merge_frontiers(batches: list[MiniBatch]) -> MergedFrontier:
    """Concatenate per-request :class:`MiniBatch` frontiers block-diagonally.

    Layer ``l``'s merged block is the disjoint union of every request's
    layer-``l`` block: source/destination rows are request-concatenated,
    local edge endpoints are shifted by their request's segment offset,
    and the segment offsets ride along as ``src_splits``/``dst_splits``
    so the GNN layers can keep per-request BLAS geometry.  Requests stay
    fully independent inside the merge — no rows are shared — which is
    exactly what preserves per-node numerics (see the module docstring).
    """
    if not batches:
        raise ValueError("merge_frontiers needs at least one MiniBatch")
    num_layers = batches[0].num_layers
    if any(mb.num_layers != num_layers for mb in batches):
        raise ValueError("all requests must have the same number of layers")
    merged_blocks: list[Block] = []
    for layer in range(num_layers):
        blocks = [mb.blocks[layer] for mb in batches]
        src_splits = np.zeros(len(blocks) + 1, dtype=np.int64)
        np.cumsum([b.num_src for b in blocks], out=src_splits[1:])
        dst_splits = np.zeros(len(blocks) + 1, dtype=np.int64)
        np.cumsum([b.num_dst for b in blocks], out=dst_splits[1:])
        merged_blocks.append(
            Block(
                src_ids=np.concatenate([b.src_ids for b in blocks]),
                num_dst=int(dst_splits[-1]),
                edge_src=np.concatenate(
                    [b.edge_src + off for b, off in zip(blocks, src_splits[:-1])]
                ),
                edge_dst=np.concatenate(
                    [b.edge_dst + off for b, off in zip(blocks, dst_splits[:-1])]
                ),
                src_splits=src_splits,
                dst_splits=dst_splits,
            )
        )
    request_rows = np.zeros(len(batches) + 1, dtype=np.int64)
    np.cumsum([len(mb.seeds) for mb in batches], out=request_rows[1:])
    return MergedFrontier(
        blocks=merged_blocks,
        seeds=np.concatenate([mb.seeds for mb in batches]),
        request_rows=request_rows,
    )


def validate_merged(merged: MergedFrontier, batches: list[MiniBatch]) -> None:
    """Assert the merged layout maps back onto every solo frontier.

    The debugging/test-battery counterpart of :func:`merge_frontiers`:
    for each request segment and layer, the sliced-out rows and
    offset-corrected edges must equal the request's own block, and the
    layer chain (merged destinations == next layer's merged sources)
    must hold.  Raises ``AssertionError`` on any violation.
    """
    assert merged.num_requests == len(batches)
    for layer, blk in enumerate(merged.blocks):
        assert blk.num_segments == len(batches)
        # per-request segment round-trip
        edge_seg = np.searchsorted(blk.src_splits, blk.edge_src, side="right") - 1
        for k, mb in enumerate(batches):
            solo = mb.blocks[layer]
            s0, s1 = blk.src_splits[k], blk.src_splits[k + 1]
            d0, d1 = blk.dst_splits[k], blk.dst_splits[k + 1]
            assert s1 - s0 == solo.num_src and d1 - d0 == solo.num_dst
            assert np.array_equal(blk.src_ids[s0:s1], solo.src_ids)
            mask = edge_seg == k
            assert int(mask.sum()) == solo.num_edges
            assert np.array_equal(blk.edge_src[mask] - s0, solo.edge_src)
            assert np.array_equal(blk.edge_dst[mask] - d0, solo.edge_dst)
            # edges stay request-contiguous in original order: identical
            # per-row accumulation order in every scatter reduction
            idx = np.flatnonzero(mask)
            assert len(idx) == 0 or np.array_equal(
                idx, np.arange(idx[0], idx[0] + len(idx))
            )
        assert np.array_equal(
            blk.dst_ids, np.concatenate([mb.blocks[layer].dst_ids for mb in batches])
        )
        if layer + 1 < len(merged.blocks):
            # the model chain: this layer's output rows are exactly the
            # next merged block's source rows
            assert np.array_equal(blk.dst_ids, merged.blocks[layer + 1].src_ids)
    assert np.array_equal(merged.blocks[-1].dst_ids, merged.seeds)


def predict_frontier(
    model, graph, features: Tensor, sampler, node_ids, *, seed: int
) -> np.ndarray:
    """Frontier-batched counterpart of :func:`~repro.serve.engine.predict_nodes`.

    Samples each node with its own ``(seed, "serve", node)`` stream —
    identical draws to the per-node path — merges the frontiers and runs
    one model forward over the union.  Bit-identical to per-node
    inference (see the module docstring); returns one row per node.
    """
    node_ids = np.asarray(node_ids, dtype=np.int64)
    if node_ids.size == 0:
        return np.zeros((0, 0), dtype=np.float32)
    was_training = model.training
    model.eval()
    try:
        with inference_mode():
            batches = [
                sampler.sample(
                    graph,
                    np.asarray([node], dtype=np.int64),
                    rng=derive_rng(seed, "serve", int(node)),
                )
                for node in node_ids
            ]
            merged = merge_frontiers(batches)
            x = gather_rows(features, merged.input_ids)
            out = model(merged.blocks, x)
    finally:
        model.train(was_training)
    return np.array(out.data, copy=True)
