"""Forward-only inference engine over a model snapshot.

Two execution modes, one algorithm:

``inline``
    Predictions computed in the calling process — the reference path.
``pool``
    The persistent-runtime path: a :class:`repro.exec.pool.WorkerPool`
    of long-lived rank processes over a shared-memory
    :class:`~repro.graph.shm.SharedGraphStore`; each micro-batch's
    missing nodes are sharded across the active ranks as
    :class:`~repro.exec.runtime.InferPlan` commands and prediction rows
    return through a :class:`~repro.shm.arena.BatchArena` slot per rank
    (pickle fallback for oversized rows, counted in
    :attr:`InferenceEngine.transport`).

Determinism contract
--------------------
A node's prediction is a pure function of ``(weights, seed, node)``:
each node is sampled with ``derive_rng(seed, "serve", node)`` and
forwarded on its own sampled subgraph under
:func:`repro.autograd.inference_mode` — alone (``batch_mode="per_node"``)
or inside a merged shared-frontier forward (``batch_mode="frontier"``,
:mod:`repro.serve.frontier`) that preserves every request's numerics
bit-for-bit.  Batch composition, batch mode and rank sharding therefore
cannot change any prediction — pool mode is bit-identical to inline
single-request inference, which is also what makes the LRU
:class:`~repro.serve.cache.EmbeddingCache` exact rather than
approximate, and what lets :meth:`InferenceEngine.reload` hot-swap
weights into a live pool (generation-guarded ParamStore republish, no
relaunch) with nothing but the cache to invalidate.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import dataclass

import numpy as np

from repro.autograd.optim import make_optimizer
from repro.autograd.ops import gather_rows
from repro.autograd.tensor import Tensor, inference_mode
from repro.exec.pool import WorkerPool
from repro.graph.delta import DeltaFragment, GraphDelta, LayeredCSR, reverse_reachable
from repro.graph.shm import SharedGraphStore
from repro.obs.metrics import MetricRegistry
from repro.obs.trace import (
    NULL_RECORDER,
    SPAN_CACHE,
    SPAN_FORWARD,
    SPAN_PREDICT,
    SPAN_SAMPLE,
    NameTable,
    TraceArena,
)
from repro.sampling.batch import estimate_request_costs
from repro.serve.cache import EmbeddingCache
from repro.serve.frontier import SHARD_POLICIES, empty_predictions, predict_frontier
from repro.serve.snapshot import ModelSnapshot
from repro.shm.arena import BatchArena, TransportStats
from repro.utils.phases import PhaseStats, RankStats
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive_int

__all__ = ["DeltaReceipt", "InferenceEngine", "predict_nodes"]


@dataclass(frozen=True)
class DeltaReceipt:
    """What one :meth:`InferenceEngine.apply_delta` call did."""

    #: graph generation after this delta (== number of fragments applied)
    generation: int
    new_edges: int
    new_nodes: int
    #: size of the reverse-reachable set whose cached predictions may change
    affected: int
    #: cache entries actually dropped (≤ affected; full flush drops all)
    invalidated: int


def predict_nodes(
    model,
    graph,
    features: Tensor,
    sampler,
    node_ids,
    *,
    seed: int,
    phases=None,
    recorder=NULL_RECORDER,
) -> np.ndarray:
    """Deterministic per-node predictions; the one serving forward path.

    Every node is sampled independently with the RNG stream
    ``(seed, "serve", node)`` and forwarded alone — the single
    definition shared by the inline engine and the pool workers
    (:func:`repro.exec.runtime._run_infer_plan`), which is what makes the
    two modes bit-identical by construction.  Runs the model in eval
    mode under :func:`~repro.autograd.tensor.inference_mode` (no tape,
    no dropout, dropout counters untouched) and restores the training
    flag afterwards.  ``phases`` (a
    :class:`~repro.utils.phases.PhaseStats`) splits per-node sampling
    from forward time.
    """
    node_ids = np.asarray(node_ids, dtype=np.int64)
    if node_ids.size == 0:
        # empty requests still report the model's output width so
        # callers can stack/concatenate results unconditionally
        return empty_predictions(model)
    was_training = model.training
    model.eval()
    rows: list[np.ndarray] = []
    try:
        with inference_mode():
            for node in node_ids:
                start = time.perf_counter()
                batch = sampler.sample(
                    graph,
                    np.asarray([node], dtype=np.int64),
                    rng=derive_rng(seed, "serve", int(node)),
                )
                mid = time.perf_counter()
                x = gather_rows(features, batch.input_ids)
                rows.append(model(batch.blocks, x).data[0].copy())
                if phases is not None or recorder.enabled:
                    end = time.perf_counter()
                    if phases is not None:
                        phases.sample_s += mid - start
                        phases.forward_s += end - mid
                    if recorder.enabled:
                        recorder.record(SPAN_SAMPLE, start, mid, int(node))
                        recorder.record(SPAN_FORWARD, mid, end, int(node))
    finally:
        model.train(was_training)
    return np.stack(rows)


class InferenceEngine:
    """Online inference over a :class:`ModelSnapshot` + dataset.

    Parameters
    ----------
    snapshot:
        The frozen model/sampler export to serve.
    dataset:
        The :class:`~repro.graph.datasets.GNNDataset` providing the graph
        and node features to sample/aggregate over.
    mode:
        ``"inline"`` (in-process) or ``"pool"`` (persistent worker pool
        over shared memory).
    batch_mode:
        How a micro-batch's missing nodes are forwarded: ``"per_node"``
        (each node alone — the reference path) or ``"frontier"``
        (shared-frontier batching: the per-node sampled frontiers are
        merged into one union subgraph and forwarded together, see
        :mod:`repro.serve.frontier`).  Bit-identical outputs either way;
        frontier mode amortises the per-request forward overhead.
    workers:
        Pool mode: number of rank workers sharing each micro-batch.
    cache_entries:
        LRU prediction-cache budget (``0`` disables the cache).
    pool:
        Optional already-constructed :class:`WorkerPool` to drive —
        shared pools survive engine reconstructions exactly like shared
        execution backends in training (the serving autotuner's
        ``workers`` axis then parks/rebinds instead of re-forking); the
        engine does not own it and :meth:`close` leaves it running.
    model, store:
        Advanced sharing hooks for pool reuse across engines: the pool's
        identity checks require the *same* model object and graph store,
        so autotuner trials that rebuild the engine per configuration
        pass both (``model`` pre-built from the snapshot, ``store`` a
        :class:`SharedGraphStore` over the dataset).  Shared stores are
        not unlinked by :meth:`close` — their creator owns them.
    timeout, start_method:
        Pool-mode knobs, as in the process execution backend.
    seed:
        Serving RNG stream (defaults to the snapshot's training seed);
        part of the per-node determinism contract.
    arena_slot_bytes:
        Per-rank result-slot size for the prediction transport; rows
        that do not fit fall back to queue pickling (counted in
        :attr:`transport`).
    staleness_budget:
        How many affecting graph deltas a cached prediction may survive
        before it stops being servable (default 0: evict eagerly, exact
        serving).  Positive budgets trade freshness for hit rate during
        update storms; stale serves are counted in
        ``cache.stats.stale_hits``.
    delta_invalidation:
        ``"scoped"`` (default) evicts only the delta's reverse-reachable
        set on :meth:`apply_delta`; ``"flush"`` drops the whole cache —
        the baseline the streaming benchmark compares against.
    tracing, trace_capacity:
        ``tracing=True`` allocates a shared-memory
        :class:`~repro.obs.trace.TraceArena` (one ``trace_capacity``-slot
        ring per pool rank plus one for the engine thread) and spans are
        recorded along the whole request path — sample/merge/forward/
        cache/steal/barrier — exportable as Chrome trace JSON
        (``serve-bench --trace``).  Off by default: the hot path holds a
        no-op recorder and takes no extra timestamps.  Purely
        observational; predictions are bit-identical either way.

    The pool-mode engine owns shared-memory segments (graph store,
    result arena, the pool's channels when the pool is owned): call
    :meth:`close` or use the engine as a context manager.
    """

    MODES = ("inline", "pool")
    BATCH_MODES = ("per_node", "frontier")
    DELTA_INVALIDATION = ("scoped", "flush")
    SHARD_POLICIES = SHARD_POLICIES

    def __init__(
        self,
        snapshot: ModelSnapshot,
        dataset,
        *,
        mode: str = "inline",
        batch_mode: str = "per_node",
        shard_policy: str = "chunk",
        workers: int = 1,
        cache_entries: int = 4096,
        pool: WorkerPool | None = None,
        model=None,
        store: SharedGraphStore | None = None,
        timeout: float = 120.0,
        start_method: str | None = None,
        seed: int | None = None,
        arena_slot_bytes: int = 1 << 20,
        staleness_budget: int = 0,
        delta_invalidation: str = "scoped",
        tracing: bool = False,
        trace_capacity: int = 1 << 14,
    ):
        if mode not in self.MODES:
            raise ValueError(f"mode must be one of {self.MODES}, got {mode!r}")
        if batch_mode not in self.BATCH_MODES:
            raise ValueError(
                f"batch_mode must be one of {self.BATCH_MODES}, got {batch_mode!r}"
            )
        if delta_invalidation not in self.DELTA_INVALIDATION:
            raise ValueError(
                f"delta_invalidation must be one of {self.DELTA_INVALIDATION}, "
                f"got {delta_invalidation!r}"
            )
        if shard_policy not in self.SHARD_POLICIES:
            raise ValueError(
                f"shard_policy must be one of {self.SHARD_POLICIES}, "
                f"got {shard_policy!r}"
            )
        self.snapshot = snapshot
        self.dataset = dataset
        self.mode = mode
        self.batch_mode = batch_mode
        #: how pool micro-batches map onto ranks (chunk | size_binned |
        #: steal).  Purely a placement knob: predictions are per-request
        #: pure functions of ``(weights, seed, node)``, so every policy
        #: is bit-identical to inline inference.  Inline mode ignores it.
        self.shard_policy = shard_policy
        self.delta_invalidation = delta_invalidation
        self.model = model if model is not None else snapshot.build_model()
        self.sampler = snapshot.build_sampler()
        self.seed = int(snapshot.seed if seed is None else seed)
        self.cache = EmbeddingCache(cache_entries, staleness_budget=staleness_budget)
        self.transport = TransportStats()
        self.features = Tensor(dataset.features)
        self.requests = 0
        #: applied delta fragments, in order; the served graph is the
        #: dataset's base CSR overlaid with these (a LayeredCSR view)
        self._fragments: list[DeltaFragment] = []
        self._graph = dataset.graph
        #: graph generation counter: bumped by every :meth:`apply_delta`;
        #: rides each InferPlan as a defensive guard and tags the workers'
        #: synced topology
        self.graph_generation = 0
        #: the unified metrics sink: phase histograms, batcher flush
        #: counters, transport counters — everything this engine's
        #: serving path accounts for, exportable as one versioned
        #: document (``repro.obs.export.metrics_document``)
        self.metrics = MetricRegistry()
        #: cumulative per-phase service-time breakdown
        #: (sample/merge/forward/cache).  In pool mode the sample/merge/
        #: forward counters sum across concurrent ranks, i.e. aggregate
        #: CPU seconds rather than wall clock — phase *shares* remain
        #: meaningful either way.  Histogram-backed: the same counters
        #: surface exact p50/p95/p99 through :attr:`metrics`.
        self.phases = PhaseStats(registry=self.metrics)
        #: per-rank wall-clock busy time + steal counts (pool mode; the
        #: inline engine books everything on rank 0) — the imbalance
        #: signal the workload driver snapshots into ServingReport
        self.rank_stats = RankStats.for_ranks(
            check_positive_int(workers, "workers") if mode == "pool" else 1
        )
        #: weight generation counter: bumped by every hot :meth:`reload`;
        #: rides each InferPlan so pool workers reload from the shared
        #: ParamStore exactly when the served weights changed
        self.generation = 0
        self._stale_pool_params = False
        self._closed = False
        # engine-shim fields the WorkerPool launch protocol reads; the
        # optimizer is inert (InferPlan never steps) but gives the
        # ParamStore channel its frozen layout
        self.n = check_positive_int(workers, "workers") if mode == "pool" else 1
        self.replicas = [self.model] * self.n
        self.optimizer_name = "sgd"
        self.lr = 1e-3
        self.optimizers = [make_optimizer(self.optimizer_name, self.model.parameters(), self.lr)]
        self._pool: WorkerPool | None = None
        self._owns_pool = False
        self._store = store
        self._owns_store = store is None
        self._arena: BatchArena | None = None
        if mode == "pool":
            self._ctx = mp.get_context(start_method)
            self._pool = pool if pool is not None else WorkerPool(self._ctx, timeout=timeout)
            self._owns_pool = pool is None
            slot_bytes = check_positive_int(arena_slot_bytes, "arena_slot_bytes")
            self._arena = BatchArena.create(num_slots=self.n, slot_bytes=max(16, slot_bytes))
        #: span tracing (off by default: a shared no-op recorder and no
        #: timing beyond what the phase counters already take).  When on,
        #: pool mode allocates one ring per worker rank plus one for the
        #: engine thread; inline mode shares a single ring.  Purely
        #: observational — the parity tests assert traced predictions
        #: are bit-identical to untraced ones.
        self.tracing = bool(tracing)
        self.trace_names = NameTable()
        self.trace_arena: TraceArena | None = None
        self.recorder = NULL_RECORDER
        self._trace_worker_ranks = self.n if mode == "pool" else 0
        if self.tracing:
            self.trace_arena = TraceArena.for_ranks(
                self._trace_worker_ranks + 1,
                capacity=check_positive_int(trace_capacity, "trace_capacity"),
            )
            self.recorder = self.trace_arena.recorder(self._trace_worker_ranks)

    # ------------------------------------------------------------------
    @property
    def pool(self) -> WorkerPool | None:
        """The live worker pool, if any (diagnostics/tests)."""
        return self._pool

    @property
    def healthy(self) -> bool:
        """Whether this engine can take traffic right now.

        Closed engines are dead; inline engines are otherwise always
        healthy.  A pool engine with forked workers needs them all
        alive — a never-launched pool (before ``warm_up``) is healthy
        because the first predict forks it lazily.  Replica supervisors
        poll this between bursts to decide restart vs route-around.
        """
        if self._closed:
            return False
        if self._pool is None or not self._pool.procs:
            return True
        return self._pool.alive

    def trace_rank_labels(self) -> dict[int, str]:
        """Ring index -> display label for trace export."""
        labels = {rank: f"rank {rank}" for rank in range(self._trace_worker_ranks)}
        labels[self._trace_worker_ranks] = "engine"
        return labels

    def _ensure_pool(self) -> None:
        if self._store is None or self._store.closed:
            self._store = SharedGraphStore.from_dataset(self.dataset)
            self._owns_store = True
        # catch the store up on deltas applied while it did not exist —
        # a fresh launch then ships them inside the store spec
        for frag in self._fragments[self._store.graph_generation :]:
            self._store.append_fragment(frag)
        if self._pool.ensure(self, self._store):
            # a fresh launch pickles the current (post-reload) weights
            # and seeds the ParamStore from them — nothing to republish
            self._stale_pool_params = False
        elif self._stale_pool_params:
            # hot swap into a live pool: one ParamStore memcpy, no forks
            self._pool.publish(self)
            self._stale_pool_params = False

    def warm_up(self) -> None:
        """Pay the launch tax up front (pool fork + shm mapping).

        Without this the first served request's latency includes the
        pool launch — correct for a cold start, noise when a bench
        compares batching/cache knobs.  Touches neither the cache nor
        the counters; a no-op in inline mode and on a warm pool.
        """
        if self.mode == "pool":
            self._ensure_pool()

    # ------------------------------------------------------------------
    def predict(self, node_ids) -> np.ndarray:
        """Predictions for ``node_ids`` (one row each, duplicates allowed).

        Per-request cache lookups first; the unique missing nodes are
        computed once — inline or sharded across the pool — inserted,
        and the rows assembled back into request order.
        """
        if self._closed:
            raise ValueError("inference engine is closed")
        node_ids = np.atleast_1d(np.asarray(node_ids, dtype=np.int64))
        if node_ids.size == 0:
            return np.zeros((0, self.snapshot.out_dim), dtype=np.float32)
        self.requests += len(node_ids)
        recorder = self.recorder
        start = time.perf_counter()
        rows: dict[int, np.ndarray] = {}
        missing: list[int] = []
        seen: set[int] = set()
        for node in node_ids:
            node = int(node)
            if node in seen:
                continue  # duplicate within the batch: one lookup, one row
            seen.add(node)
            row = self.cache.get(node)
            if row is None:
                missing.append(node)
            else:
                rows[node] = row
        end = time.perf_counter()
        self.phases.cache_s += end - start
        if recorder.enabled:
            recorder.record(SPAN_CACHE, start, end, len(node_ids))
        if missing:
            preds = self._compute(np.asarray(missing, dtype=np.int64))
            mid = time.perf_counter()
            for node, row in zip(missing, preds):
                self.cache.put(node, row)
                rows[node] = row
            end = time.perf_counter()
            self.phases.cache_s += end - mid
            if recorder.enabled:
                recorder.record(SPAN_CACHE, mid, end, len(missing))
        result = np.stack([rows[int(node)] for node in node_ids])
        if recorder.enabled:
            recorder.record(SPAN_PREDICT, start, time.perf_counter(), len(node_ids))
        return result

    def _compute(self, miss_ids: np.ndarray) -> np.ndarray:
        if self.mode == "inline":
            forward = predict_frontier if self.batch_mode == "frontier" else predict_nodes
            # CPU seconds, matching the pool ranks' busy_s measurement
            start = time.process_time()
            preds = forward(
                self.model,
                self._graph,
                self.features,
                self.sampler,
                miss_ids,
                seed=self.seed,
                phases=self.phases,
                recorder=self.recorder,
            )
            self.rank_stats.add_batch([time.process_time() - start], [0])
            return preds
        self._ensure_pool()
        costs = None
        if self.shard_policy != "chunk" and self.n > 1:
            # RNG-free balance probe: exact hop-1 frontier sizes from
            # capped degrees (never touches the serving RNG streams)
            costs = estimate_request_costs(
                self._graph, miss_ids, getattr(self.sampler, "fanouts", None)
            )
        return self._pool.run_infer(
            miss_ids,
            self.sampler,
            seed=self.seed,
            arena=self._arena,
            transport=self.transport,
            batch_mode=self.batch_mode,
            generation=self.generation,
            graph_generation=self.graph_generation,
            phases=self.phases,
            shard_policy=self.shard_policy,
            costs=costs,
            rank_stats=self.rank_stats,
            trace_spec=self.trace_arena.spec if self.trace_arena is not None else None,
            recorder=self.recorder,
        )

    # ------------------------------------------------------------------
    def apply_delta(self, delta: GraphDelta) -> DeltaReceipt:
        """Append edges/nodes to the *live* serving deployment.

        The delta is normalised to a :class:`DeltaFragment`, layered over
        the served graph view (no rebuild of the base CSR), published to
        the shared-memory store, and — when a pool is live — announced to
        every worker with a fire-and-forget
        :class:`~repro.exec.runtime.GraphDeltaPlan` on the FIFO command
        queues, so ``pool.launches`` stays flat.

        Cache handling is the scoped-invalidation story: only the
        reverse-reachable set within the sampler's hop depth of the
        mutated vertices can have changed predictions, so only those
        entries are invalidated (``delta_invalidation="flush"`` drops
        everything instead, as a baseline).  Post-delta predictions are
        bit-identical to a cold engine built on the materialised merged
        graph (:func:`repro.graph.delta.materialize_dataset`).
        """
        if self._closed:
            raise ValueError("inference engine is closed")
        frag = DeltaFragment.from_delta(
            delta,
            num_nodes=self._graph.num_nodes,
            feature_dim=int(self.dataset.features.shape[1]),
            feature_dtype=self.dataset.features.dtype,
            label_dtype=self.dataset.labels.dtype,
        )
        self._fragments.append(frag)
        self._graph = LayeredCSR(self.dataset.graph, list(self._fragments))
        if frag.num_new_nodes:
            parts = [self.dataset.features] + [
                f.features for f in self._fragments if f.num_new_nodes
            ]
            self.features = Tensor(np.concatenate(parts))
        self.graph_generation += 1
        # hop depth of the sampler's receptive field: num_layers for the
        # layered samplers, fanout count for subgraph samplers (ShaDow
        # induces over the full node set, one hop deeper than its growth
        # loop) — the max is a safe scope for either
        hops = max(
            int(self.sampler.num_layers),
            len(getattr(self.sampler, "fanouts", ()) or ()),
        )
        affected = reverse_reachable(self._graph, frag.rows, hops)
        if self.delta_invalidation == "scoped":
            invalidated = self.cache.invalidate(affected)
        else:
            invalidated = self.cache.invalidate(None)
        if self._store is not None and not self._store.closed:
            self._store.append_fragment(frag)
            if (
                self._pool is not None
                and self._pool.alive
                and self._pool.store is self._store
            ):
                self._pool.broadcast_delta(
                    self.graph_generation, self._store.delta_specs
                )
        return DeltaReceipt(
            generation=self.graph_generation,
            new_edges=frag.num_new_edges,
            new_nodes=frag.num_new_nodes,
            affected=len(affected),
            invalidated=invalidated,
        )

    # ------------------------------------------------------------------
    def reload(self, snapshot: ModelSnapshot) -> None:
        """Hot-swap the served weights from ``snapshot``; no relaunch.

        The snapshot must be parameter-compatible with the one being
        served (same model topology — the frozen :class:`ParamStore`
        layout and the pool's :func:`~repro.exec.pool.pool_signature`
        both depend on it).  Weights are loaded into the live model
        object in place, the prediction cache is invalidated by bumping
        its weight tag (cached rows belong to the old weights; the graph
        is unchanged, so an O(entries) flush would be wasted work — tag
        mismatches are dropped lazily on lookup), and the generation
        counter is bumped; pool mode republishes through the existing
        ParamStore channel on the next batch — ``pool.launches`` stays
        flat.  The serving RNG stream (``seed``) is deliberately left
        unchanged: it is the engine's identity, not the snapshot's.
        """
        if self._closed:
            raise ValueError("inference engine is closed")
        current = self.model.state_dict()
        if set(snapshot.state) != set(current) or any(
            np.asarray(snapshot.state[k]).shape != current[k].shape for k in current
        ):
            raise ValueError(
                "incompatible snapshot: parameter topology differs from the "
                "served model (hot swap needs matching names and shapes)"
            )
        self.model.load_state_dict(snapshot.state)
        self.snapshot = snapshot
        self.sampler = snapshot.build_sampler()
        self.cache.bump_weight_tag()
        self.generation += 1
        self._stale_pool_params = True

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release serving resources; idempotent.

        Owned pools are shut down (shared pools keep running for their
        owner); the graph store and result arena are unlinked either way
        — they are this engine's segments.
        """
        self._closed = True
        if self._pool is not None and self._owns_pool:
            self._pool.shutdown()
        if self._arena is not None:
            self._arena.unlink()
            self._arena = None
        if self.trace_arena is not None:
            self.recorder = NULL_RECORDER
            self.trace_arena.unlink()
            self.trace_arena = None
        if self._owns_store and self._store is not None and not self._store.closed:
            self._store.unlink()
        self._store = None

    def __enter__(self) -> "InferenceEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
