"""LRU prediction/embedding cache keyed by node id.

Serving traffic is heavily skewed — a Zipf-popular node is requested
over and over — and a node's prediction is a *deterministic* function of
``(weights, seed, node)`` in this runtime (per-node derived sampling
RNG), so caching it is exact, not approximate.  The cache is a plain
ordered-dict LRU with hit/miss/eviction accounting; the serving report
and the autotuner's ``cache_entries`` axis both read
:class:`CacheStats`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["CacheStats", "EmbeddingCache"]


@dataclass
class CacheStats:
    """Lookup accounting over an :class:`EmbeddingCache`'s lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0


class EmbeddingCache:
    """Bounded LRU mapping ``node id -> prediction row``.

    ``capacity`` is the entry budget; ``0`` disables caching entirely
    (every lookup is a miss, nothing is stored) so the autotuner can
    search "no cache" as a point of the ``cache_entries`` axis.  Stored
    rows are copied in and handed out read-only, so a caller mutating
    its result cannot poison later hits.
    """

    def __init__(self, capacity: int):
        capacity = int(capacity)
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: OrderedDict[int, np.ndarray] = OrderedDict()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        """Presence probe without touching recency or the counters."""
        return int(key) in self._entries

    def get(self, key) -> np.ndarray | None:
        """The cached row for ``key`` (refreshing recency), else ``None``."""
        key = int(key)
        row = self._entries.get(key)
        if row is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return row

    def put(self, key, value: np.ndarray) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""
        if self.capacity == 0:
            return
        key = int(key)
        if key in self._entries:
            self._entries.move_to_end(key)
            return  # deterministic predictions: the stored row is current
        if len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        row = np.array(value, copy=True)
        row.setflags(write=False)
        self._entries[key] = row

    def clear(self) -> None:
        """Drop every entry (the counters keep their history)."""
        self._entries.clear()
