"""LRU prediction/embedding cache keyed by node id, generation-tagged.

Serving traffic is heavily skewed — a Zipf-popular node is requested
over and over — and a node's prediction is a *deterministic* function of
``(weights, topology@generation, seed, node)`` in this runtime (per-node
derived sampling RNG), so caching it is exact, not approximate.  The
cache is a plain ordered-dict LRU with hit/miss/eviction accounting; the
serving report and the autotuner's ``cache_entries`` axis both read
:class:`CacheStats`.

Two kinds of state change can outdate an entry, and they invalidate
differently:

* **weight swaps** (:meth:`EmbeddingCache.bump_weight_tag`): every entry
  dies at once, so the cache just bumps a tag and drops mismatching
  entries lazily on lookup — O(1) per swap instead of O(entries);
* **graph deltas** (:meth:`EmbeddingCache.invalidate`): only nodes whose
  sampled receptive field can contain a mutated vertex are affected, so
  the engine passes that reverse-reachable set and everything else keeps
  its entry.  A ``staleness_budget`` > 0 keeps affected entries servable
  for that many affecting deltas (marked stale, counted separately in
  ``stats.stale_hits``) — the knob for stale-tolerant traffic during an
  update storm.  Budget 0 (default) evicts eagerly, preserving the exact
  bitwise serving contract.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["CacheStats", "EmbeddingCache"]


@dataclass
class CacheStats:
    """Lookup accounting over an :class:`EmbeddingCache`'s lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    #: hits served from an entry marked stale by a graph delta (within budget)
    stale_hits: int = 0
    #: entries dropped by invalidation (scoped, full flush, or a lazy
    #: weight-tag mismatch on lookup) — distinct from capacity evictions
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 before any lookup)."""
        return self.hits / self.lookups if self.lookups else 0.0


class EmbeddingCache:
    """Bounded LRU mapping ``node id -> (prediction row, generation tags)``.

    ``capacity`` is the entry budget; ``0`` disables caching entirely
    (every lookup is a miss, nothing is stored) so the autotuner can
    search "no cache" as a point of the ``cache_entries`` axis.  Stored
    rows are copied in and handed out read-only, so a caller mutating
    its result cannot poison later hits.

    Each entry carries the :attr:`weight_tag` it was computed under and a
    stale counter fed by :meth:`invalidate`; see the module docstring for
    the invalidation model.
    """

    def __init__(self, capacity: int, *, staleness_budget: int = 0):
        capacity = int(capacity)
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        staleness_budget = int(staleness_budget)
        if staleness_budget < 0:
            raise ValueError(
                f"staleness_budget must be >= 0, got {staleness_budget}"
            )
        self.capacity = capacity
        self.staleness_budget = staleness_budget
        self.stats = CacheStats()
        #: current weight generation; entries tagged otherwise are dead
        self.weight_tag = 0
        #: graph generation, bumped once per :meth:`invalidate` call
        self.graph_generation = 0
        # node id -> [row, weight_tag, stale_count]
        self._entries: OrderedDict[int, list] = OrderedDict()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        """Servability probe without touching recency or the counters.

        True only when a lookup *would* hit: the entry exists, was
        computed under the current weights, and is fresh or within the
        staleness budget.
        """
        entry = self._entries.get(int(key))
        if entry is None:
            return False
        return entry[1] == self.weight_tag and entry[2] <= self.staleness_budget

    def warmth(self, keys) -> int:
        """How many of ``keys`` a lookup *would* hit, right now.

        A bulk ``__contains__``: no recency refresh, no counter updates,
        no lazy eviction — safe for a router to call on every request
        burst.  Cache-affinity routing ranks replicas by this number to
        send a node to the replica most likely to answer from cache.
        """
        return sum(1 for key in keys if key in self)

    def get(self, key) -> np.ndarray | None:
        """The cached row for ``key`` (refreshing recency), else ``None``.

        Entries from an older weight generation or staled past the budget
        are dropped here, lazily — that is what makes weight swaps O(1).
        """
        key = int(key)
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        if entry[1] != self.weight_tag or entry[2] > self.staleness_budget:
            del self._entries[key]
            self.stats.invalidated += 1
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        if entry[2]:
            self.stats.stale_hits += 1
        return entry[0]

    def put(self, key, value: np.ndarray) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""
        if self.capacity == 0:
            return
        key = int(key)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            if entry[1] == self.weight_tag and entry[2] == 0:
                return  # deterministic predictions: the stored row is current
            del self._entries[key]  # replace an outdated row with the fresh one
        elif len(self._entries) >= self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
        row = np.array(value, copy=True)
        row.setflags(write=False)
        self._entries[key] = [row, self.weight_tag, 0]

    # ------------------------------------------------------------------
    # invalidation
    # ------------------------------------------------------------------
    def bump_weight_tag(self) -> None:
        """O(1) full invalidation for a weight-only snapshot swap.

        Entries keep occupying capacity until a lookup or eviction
        reclaims them, but none can be served: :meth:`get` drops
        tag-mismatched entries on contact.
        """
        self.weight_tag += 1

    def invalidate(self, nodes=None) -> int:
        """Graph-delta invalidation; returns how many entries were dropped.

        ``nodes=None`` is a full flush (every entry dropped).  Otherwise
        ``nodes`` is the delta's reverse-reachable set: present entries
        among them age by one affecting delta — dropped once past
        :attr:`staleness_budget`, served-but-counted-stale within it.
        Nodes outside the set are untouched; that scoping is the point.
        """
        self.graph_generation += 1
        if nodes is None:
            dropped = len(self._entries)
            self._entries.clear()
            self.stats.invalidated += dropped
            return dropped
        dropped = 0
        for node in np.asarray(nodes).ravel():
            key = int(node)
            entry = self._entries.get(key)
            if entry is None:
                continue
            entry[2] += 1
            if entry[2] > self.staleness_budget:
                del self._entries[key]
                dropped += 1
        self.stats.invalidated += dropped
        return dropped

    def clear(self) -> None:
        """Drop every entry (the counters keep their history)."""
        self._entries.clear()
