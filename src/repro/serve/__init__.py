"""Online inference serving runtime.

The training side of this repository (paper conf_ipps_LinCGJJP24)
optimises epoch throughput; this subpackage is the *serving* vertical
layered on the same runtime substrate: a frozen
:class:`~repro.serve.snapshot.ModelSnapshot` exported from a trained
engine, a deadline-aware :class:`~repro.serve.batcher.MicroBatcher`
coalescing per-node requests, an LRU
:class:`~repro.serve.cache.EmbeddingCache` over predictions, an
:class:`~repro.serve.engine.InferenceEngine` that runs forward-only
sampled inference inline or across the persistent
:class:`~repro.exec.pool.WorkerPool`, and a synthetic Zipf/Poisson
workload driver (:mod:`repro.serve.workload`) with admission control
reporting throughput and tail latency.  Micro-batches forward either
per node or through the shared-frontier merger
(:mod:`repro.serve.frontier` — one vectorised forward per batch,
bit-identical to per-node inference), live engines hot-swap snapshots
via :meth:`InferenceEngine.reload` without relaunching their pool, and
the serving knobs (``workers``, ``max_batch``, ``max_wait_ms``,
``cache_entries``, ``batch_mode``) are searchable by the existing BO
autotuner via :class:`repro.tuning.serving.ServingSpace`.

Live graphs: a deployed engine accepts streaming topology updates via
:meth:`InferenceEngine.apply_delta` — append-only
:class:`~repro.graph.delta.GraphDelta` batches layer onto the frozen
snapshot without a rebuild or pool relaunch, the cache is invalidated
only over the delta's reverse-reachable set, and the workload driver
interleaves a Poisson update stream (:func:`make_update_stream`) with
Zipf reads, reporting freshness alongside latency.

Horizontal scale: :mod:`repro.serve.cluster` runs N engine replicas as
supervised resources behind a front-end :class:`Router`
(round-robin / consistent-hash / cache-affinity routing with
queue-depth spill), with rolling snapshot hot-swaps at flat
``pool.launches``, crash-restart supervision, and a deterministic
``autoscale`` step driven by the workload driver's queue/SLO signals —
bit-identical to one engine at any replica count.
"""

from repro.serve.batcher import BatchStats, MicroBatcher, Request
from repro.serve.cache import CacheStats, EmbeddingCache
from repro.serve.cluster import (
    ROUTE_POLICIES,
    AutoscaleDecision,
    ClusterRunResult,
    HashRing,
    ReplicaHandle,
    Router,
    ServingCluster,
    run_cluster_workload,
)
from repro.serve.engine import DeltaReceipt, InferenceEngine, predict_nodes
from repro.serve.frontier import MergedFrontier, merge_frontiers, predict_frontier
from repro.serve.snapshot import ModelSnapshot
from repro.serve.workload import (
    ServingReport,
    make_refusal_report,
    make_update_stream,
    merge_replica_reports,
    merge_reports,
    run_serving_workload,
    zipf_nodes,
)

__all__ = [
    "BatchStats",
    "MicroBatcher",
    "Request",
    "CacheStats",
    "EmbeddingCache",
    "ROUTE_POLICIES",
    "AutoscaleDecision",
    "ClusterRunResult",
    "HashRing",
    "ReplicaHandle",
    "Router",
    "ServingCluster",
    "run_cluster_workload",
    "DeltaReceipt",
    "InferenceEngine",
    "predict_nodes",
    "MergedFrontier",
    "merge_frontiers",
    "predict_frontier",
    "ModelSnapshot",
    "ServingReport",
    "make_refusal_report",
    "make_update_stream",
    "merge_replica_reports",
    "merge_reports",
    "run_serving_workload",
    "zipf_nodes",
]
