"""Synthetic serving traffic: Poisson arrivals, Zipf popularity, SLO report.

The driver measures an :class:`~repro.serve.engine.InferenceEngine`
under realistic request dynamics without real sleeping: arrivals and
queueing run on a **virtual clock** (deterministic in the seed) while
each flushed batch's service time is the *measured* wall time of the
real ``predict`` call.  Latency of a request is then

    (flush time + measured service time) - arrival time

on the virtual axis — batching delay, queueing behind a busy server and
real compute all included, yet the bench is fast (no idle waiting) and
the arrival process is exactly reproducible.

Two traffic shapes:

* **open loop** — Poisson arrivals at ``rate_rps``; load is independent
  of the server, so an undersized configuration visibly builds queue and
  blows up tail latency (the p99-vs-throughput trade-off of Fig. 9).
* **closed loop** — ``concurrency`` clients each issue the next request
  the moment the previous completes; measures saturated throughput.

Node popularity is Zipf-skewed (:func:`zipf_nodes`) so the prediction
cache actually matters: a handful of hot nodes dominate the stream.

Admission control: ``queue_limit`` bounds the pending queue with a
shed-oldest policy (:meth:`~repro.serve.batcher.MicroBatcher.shed_oldest`).
Past saturation an open loop would otherwise grow its queue — and every
request's latency — without bound; with a limit, overflow arrivals push
the longest-waiting request out, ``ServingReport.shed_count`` records
the refusals, and the served tail stays bounded.

Streaming updates: ``updates`` interleaves a timed stream of
:class:`~repro.graph.delta.GraphDelta`\\ s (see :func:`make_update_stream`
for a Poisson generator) into the read traffic — each is applied with
:meth:`~repro.serve.engine.InferenceEngine.apply_delta` when the virtual
clock passes its timestamp, its measured wall time occupies the server,
and the report gains freshness accounting: how many updates landed, how
long they took, how many requests were served from within-budget stale
cache entries, and how many cache entries invalidation dropped.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from repro.graph.delta import GraphDelta
from repro.serve.batcher import MicroBatcher, Request
from repro.serve.cache import CacheStats
from repro.shm.arena import TransportStats
from repro.utils.phases import RankStats
from repro.utils.rng import derive_rng
from repro.utils.validation import check_positive_int

__all__ = [
    "SERVING_REPORT_SCHEMA_VERSION",
    "ServingReport",
    "zipf_nodes",
    "hot_key_nodes",
    "SCENARIOS",
    "make_scenario",
    "poisson_arrivals",
    "make_update_stream",
    "run_serving_workload",
    "merge_reports",
    "merge_replica_reports",
    "make_refusal_report",
]


def zipf_nodes(
    catalog: np.ndarray, num_requests: int, *, alpha: float = 1.1, rng=None
) -> np.ndarray:
    """``num_requests`` node ids drawn Zipf(``alpha``)-skewed from ``catalog``.

    Popularity rank is a seeded permutation of the catalog (so "which
    node is hot" is deterministic but not trivially the lowest id);
    ``alpha=0`` degenerates to uniform traffic.
    """
    catalog = np.asarray(catalog, dtype=np.int64)
    if catalog.size == 0:
        raise ValueError("empty node catalog")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    rng = rng if rng is not None else np.random.default_rng()
    ranked = rng.permutation(catalog)
    weights = 1.0 / np.arange(1, len(ranked) + 1, dtype=np.float64) ** alpha
    probs = weights / weights.sum()
    return ranked[rng.choice(len(ranked), size=int(num_requests), p=probs)]


def hot_key_nodes(
    catalog: np.ndarray,
    num_requests: int,
    *,
    alpha: float = 2.2,
    graph=None,
    flash_fraction: float = 0.0,
    background_fraction: float = 0.0,
    rng=None,
) -> np.ndarray:
    """Adversarial hot-key stream: extreme Zipf skew aimed at the sharder.

    Same draw as :func:`zipf_nodes` but the popularity ranking is chosen
    to *maximise* per-request cost skew: when ``graph`` is given, nodes
    are ranked by **descending in-degree**, so the hottest keys are the
    hub nodes with the largest sampled frontiers.  Index-chunked
    sharding is then systematically bad — the hot hubs cluster at the
    head of every micro-batch and ``np.array_split`` hands them all to
    rank 0 — which is exactly the scenario size-binned placement and
    work stealing exist for.  Without a graph the ranking falls back to
    a seeded permutation (plain :func:`zipf_nodes` at high ``alpha``).

    ``background_fraction`` mixes that fraction of *organic* traffic —
    uniform draws over the whole catalog — into the hub-ranked Zipf
    stream.  That is the genuinely adversarial shape: hot hubs arriving
    over a bed of cheap background requests, so every micro-batch mixes
    fanout-capped hub frontiers with tiny organic ones and an
    index-chunked split is systematically uneven.  (A pure hub stream
    at high skew is *homogeneous* after dedup — every distinct key is
    cost-capped — and accidentally balanced.)

    ``flash_fraction`` optionally layers a flash crowd on top: that
    fraction of the stream, as one contiguous slice in the middle of
    the run, is replaced by the single hottest key — a sudden
    every-client-asks-for-the-same-thing ramp.
    """
    catalog = np.asarray(catalog, dtype=np.int64)
    if catalog.size == 0:
        raise ValueError("empty node catalog")
    if alpha < 0:
        raise ValueError(f"alpha must be >= 0, got {alpha}")
    if not 0.0 <= flash_fraction <= 1.0:
        raise ValueError(f"flash_fraction must be in [0, 1], got {flash_fraction}")
    if not 0.0 <= background_fraction <= 1.0:
        raise ValueError(
            f"background_fraction must be in [0, 1], got {background_fraction}"
        )
    rng = rng if rng is not None else np.random.default_rng()
    if graph is not None:
        deg = np.asarray(graph.in_degree(catalog), dtype=np.int64)
        # stable sort keeps equal-degree ties in catalog order (deterministic)
        ranked = catalog[np.argsort(-deg, kind="stable")]
    else:
        ranked = rng.permutation(catalog)
    weights = 1.0 / np.arange(1, len(ranked) + 1, dtype=np.float64) ** alpha
    probs = weights / weights.sum()
    seq = ranked[rng.choice(len(ranked), size=int(num_requests), p=probs)]
    if background_fraction > 0.0 and len(seq):
        organic = rng.choice(catalog, size=len(seq))
        seq = np.where(rng.random(len(seq)) < background_fraction, organic, seq)
    if flash_fraction > 0.0 and len(seq):
        crowd = int(round(flash_fraction * len(seq)))
        if crowd:
            start = (len(seq) - crowd) // 2
            seq[start : start + crowd] = ranked[0]
    return seq


#: Named traffic scenarios for benches and the serve CLI.  Each maps a
#: name to a generator ``(catalog, num_requests, *, alpha, graph, rng)
#: -> node sequence``; resolve one with :func:`make_scenario`.
SCENARIOS = ("zipf", "hot_key", "flash_crowd")


def make_scenario(
    name: str,
    catalog: np.ndarray,
    num_requests: int,
    *,
    alpha: float = 1.1,
    graph=None,
    rng=None,
) -> np.ndarray:
    """Build the node sequence for a named traffic scenario.

    ``zipf`` is the default benign skew (:func:`zipf_nodes`);
    ``hot_key`` ranks popularity by hub in-degree at the given ``alpha``
    over a 35% organic-background bed (:func:`hot_key_nodes`);
    ``flash_crowd`` is ``hot_key`` with a 25% contiguous flash-crowd
    ramp on the hottest hub.
    """
    if name == "zipf":
        return zipf_nodes(catalog, num_requests, alpha=alpha, rng=rng)
    if name == "hot_key":
        return hot_key_nodes(
            catalog, num_requests, alpha=alpha, graph=graph,
            background_fraction=0.35, rng=rng,
        )
    if name == "flash_crowd":
        return hot_key_nodes(
            catalog, num_requests, alpha=alpha, graph=graph,
            flash_fraction=0.25, background_fraction=0.35, rng=rng,
        )
    raise ValueError(f"unknown scenario {name!r}; expected one of {SCENARIOS}")


def poisson_arrivals(num_requests: int, rate_rps: float, *, rng=None) -> np.ndarray:
    """Cumulative Poisson-process arrival times (seconds) at ``rate_rps``."""
    check_positive_int(num_requests, "num_requests")
    if rate_rps <= 0:
        raise ValueError(f"rate_rps must be > 0, got {rate_rps}")
    rng = rng if rng is not None else np.random.default_rng()
    return np.cumsum(rng.exponential(1.0 / rate_rps, size=int(num_requests)))


def make_update_stream(
    num_nodes: int,
    *,
    num_updates: int,
    rate_ups: float,
    edges_per_update: int = 4,
    new_node_every: int = 0,
    feature_dim: int = 0,
    rng=None,
) -> list[tuple[float, GraphDelta]]:
    """Poisson-timed stream of random :class:`GraphDelta`\\ s for a workload.

    Each update appends ``edges_per_update`` edges between uniformly drawn
    endpoints; when ``new_node_every`` is ``k > 0``, every ``k``-th update
    additionally appends one node (standard-normal ``feature_dim``
    features, label 0) and wires its edges to land on it, so later
    updates — and Zipf reads, if the caller extends the catalog — can
    reach it.  The stream is deterministic in ``rng`` and sorted by
    timestamp, ready for ``run_serving_workload(updates=...)``.
    """
    check_positive_int(num_updates, "num_updates")
    check_positive_int(edges_per_update, "edges_per_update")
    if rate_ups <= 0:
        raise ValueError(f"rate_ups must be > 0, got {rate_ups}")
    if new_node_every and feature_dim <= 0:
        raise ValueError("new_node_every > 0 requires feature_dim > 0")
    rng = rng if rng is not None else np.random.default_rng()
    times = poisson_arrivals(num_updates, rate_ups, rng=rng)
    stream: list[tuple[float, GraphDelta]] = []
    count = int(num_nodes)
    for i, t in enumerate(times):
        adds_node = bool(new_node_every) and (i + 1) % new_node_every == 0
        src = rng.integers(0, count, size=edges_per_update).astype(np.int64)
        if adds_node:
            # the fresh node (id == current count) receives every new edge
            dst = np.full(edges_per_update, count, dtype=np.int64)
            features = rng.standard_normal((1, feature_dim)).astype(np.float32)
            labels = np.zeros(1, dtype=np.int64)
            count += 1
        else:
            dst = rng.integers(0, count, size=edges_per_update).astype(np.int64)
            features = None
            labels = None
        stream.append(
            (float(t), GraphDelta(src=src, dst=dst, features=features, labels=labels))
        )
    return stream


#: version stamp for :meth:`ServingReport.as_dict` / ``--report-json``
#: documents.  Bump when a key is renamed, removed, or changes meaning;
#: adding new keys is backward compatible and does not bump it.
SERVING_REPORT_SCHEMA_VERSION = 1


@dataclass
class ServingReport:
    """One workload run's outcome: throughput, tail latency, cache/arena.

    ``requests`` counts everything submitted; ``shed_count`` of those
    were refused by admission control and carry ``NaN`` latencies — all
    latency statistics and ``throughput_rps`` cover the *served*
    requests only, while :meth:`slo_attainment` counts a shed request
    as an SLO miss (the client got an error, not an answer).
    """

    mode: str
    requests: int
    duration_s: float  # virtual makespan: first arrival epoch to last completion
    service_s: float  # summed real wall time inside predict()
    throughput_rps: float
    mean_ms: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_batch: float
    full_flushes: int
    deadline_flushes: int
    drain_flushes: int
    cache: CacheStats
    transport: TransportStats
    #: requests refused by the bounded queue's shed-oldest policy
    shed_count: int = 0
    #: peak pending-queue length observed after admission
    max_queue: int = 0
    #: per-phase breakdown of the engine's work during this run (ms):
    #: frontier sampling, merged-layout assembly, model forward, and
    #: cache lookup/insert.  In pool mode sample/merge/forward sum
    #: across concurrent ranks (aggregate CPU ms, not wall clock), so
    #: compare *shares*, not absolute times, against ``service_s``.
    sample_ms: float = 0.0
    merge_ms: float = 0.0
    forward_ms: float = 0.0
    cache_ms: float = 0.0
    #: graph deltas applied inside this run (streaming-update workloads)
    updates_applied: int = 0
    #: real wall time spent inside ``engine.apply_delta`` (ms); occupies
    #: the virtual-clock server just like predict() service time does
    update_ms: float = 0.0
    #: cache hits served from an entry ``apply_delta`` had marked stale
    #: but the engine's ``staleness_budget`` still allowed out the door
    stale_served: int = 0
    #: cache entries dropped by delta invalidation (scoped or flush)
    invalidated: int = 0
    #: engine graph generation when the run finished
    graph_generation: int = 0
    #: request->rank placement policy the engine ran with
    shard_policy: str = "chunk"
    #: how batch service time was booked: ``"wall"`` (measured predict
    #: wall clock) or ``"critical_path"`` (max per-rank CPU busy — the
    #: parallel completion time, independent of host core count)
    service_model: str = "wall"
    #: per-rank CPU seconds spent inside the forward, summed over
    #: batches (inline mode books everything on a single rank 0 entry)
    rank_busy_ms: list = field(default_factory=list)
    #: per-rank count of segments claimed outside the rank's own bin
    rank_steals: list = field(default_factory=list)
    #: total stolen segments across ranks during this run
    steal_count: int = 0
    #: max-over-mean per-rank busy time (1.0 = perfectly level)
    imbalance: float = 1.0
    #: per-request latencies (seconds, request-id order; NaN = shed)
    latencies_s: np.ndarray = field(repr=False, default=None)
    #: schema stamp carried on the report itself so cross-replica merges
    #: can refuse mixed-version inputs; ``as_dict`` emits it verbatim
    schema_version: int = SERVING_REPORT_SCHEMA_VERSION

    @property
    def served(self) -> int:
        """Requests that actually received a prediction."""
        return self.requests - self.shed_count

    @property
    def freshness(self) -> float:
        """Fraction of served requests answered with delta-fresh data.

        A request counts as stale when its cache hit came from an entry
        invalidated by an earlier ``apply_delta`` but still within the
        engine's ``staleness_budget``.  1.0 when nothing was served.
        """
        if self.served <= 0:
            return 1.0
        return 1.0 - self.stale_served / self.served

    @property
    def sampling_share(self) -> float:
        """Fraction of tracked engine time spent drawing frontiers.

        Computed against the phase total rather than ``service_s`` so the
        share stays meaningful in pool mode, where the phase counters
        aggregate CPU time across concurrent ranks.
        """
        total = self.sample_ms + self.merge_ms + self.forward_ms + self.cache_ms
        return self.sample_ms / total if total > 0 else 0.0

    def slo_attainment(self, slo_ms: float) -> float:
        """Fraction of *all* requests completed within ``slo_ms``.

        Shed requests count as misses: ``NaN <= slo`` is False.
        """
        if self.latencies_s is None or not len(self.latencies_s):
            return 0.0
        with np.errstate(invalid="ignore"):
            return float(np.mean(self.latencies_s * 1e3 <= slo_ms))

    def as_dict(self, slo_ms: float | None = None) -> dict:
        """The full report as one JSON-serialisable document.

        Everything a dashboard needs in plain Python scalars — the raw
        latency array is folded into its summary statistics rather than
        dumped.  Pass ``slo_ms`` to include SLO attainment at that
        target (both overall and freshness-weighted).
        """
        doc = {
            "schema_version": self.schema_version,
            "mode": self.mode,
            "requests": self.requests,
            "served": self.served,
            "shed_count": self.shed_count,
            "duration_s": self.duration_s,
            "service_s": self.service_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": {
                "mean": self.mean_ms,
                "p50": self.p50_ms,
                "p95": self.p95_ms,
                "p99": self.p99_ms,
            },
            "batching": {
                "mean_batch": self.mean_batch,
                "full_flushes": self.full_flushes,
                "deadline_flushes": self.deadline_flushes,
                "drain_flushes": self.drain_flushes,
                "max_queue": self.max_queue,
            },
            "phases_ms": {
                "sample": self.sample_ms,
                "merge": self.merge_ms,
                "forward": self.forward_ms,
                "cache": self.cache_ms,
                "sampling_share": self.sampling_share,
            },
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "evictions": self.cache.evictions,
                "stale_hits": self.cache.stale_hits,
                "invalidated": self.cache.invalidated,
                "hit_rate": self.cache.hit_rate,
            },
            "transport": {
                "arena_hits": self.transport.arena_hits,
                "pickle_fallbacks": self.transport.pickle_fallbacks,
                "hit_rate": self.transport.hit_rate,
            },
            "balance": {
                "shard_policy": self.shard_policy,
                "service_model": self.service_model,
                "rank_busy_ms": [float(b) for b in self.rank_busy_ms],
                "rank_steals": [int(s) for s in self.rank_steals],
                "steal_count": self.steal_count,
                "imbalance": self.imbalance,
            },
            "freshness": {
                "updates_applied": self.updates_applied,
                "update_ms": self.update_ms,
                "stale_served": self.stale_served,
                "invalidated": self.invalidated,
                "graph_generation": self.graph_generation,
                "fresh_fraction": self.freshness,
            },
        }
        if slo_ms is not None:
            doc["slo"] = {
                "target_ms": float(slo_ms),
                "attainment": self.slo_attainment(slo_ms),
            }
        return doc


def _percentile_stats(served_lat_s: np.ndarray) -> tuple[float, float, float, float]:
    """(mean, p50, p95, p99) in ms over the served latencies (0s if none).

    NaN entries (shed requests) are filtered here as well as at the call
    sites, so a merged report whose segments were *all* shed — e.g. a
    replica refused an entire burst while crashed — reports clean zeros
    instead of NaN-propagating percentiles (and no RuntimeWarning).
    """
    served_lat_s = np.asarray(served_lat_s, dtype=np.float64)
    served_lat_s = served_lat_s[~np.isnan(served_lat_s)]
    if not len(served_lat_s):
        return 0.0, 0.0, 0.0, 0.0
    lat_ms = served_lat_s * 1e3
    return (
        float(lat_ms.mean()),
        float(np.percentile(lat_ms, 50)),
        float(np.percentile(lat_ms, 95)),
        float(np.percentile(lat_ms, 99)),
    )


def run_serving_workload(
    engine,
    *,
    num_requests: int = 256,
    rate_rps: float = 500.0,
    zipf_alpha: float = 1.1,
    max_batch: int = 8,
    max_wait_ms: float = 2.0,
    closed_loop: bool = False,
    concurrency: int = 8,
    queue_limit: int | None = None,
    nodes: np.ndarray | None = None,
    node_sequence: np.ndarray | None = None,
    arrival_times: np.ndarray | None = None,
    updates: list[tuple[float, GraphDelta]] | None = None,
    service_model: str = "wall",
    seed: int = 0,
) -> ServingReport:
    """Drive ``engine`` through one synthetic workload; returns the report.

    ``nodes`` restricts the request catalog (default: the dataset's
    validation split, falling back to all nodes when it is empty);
    ``node_sequence`` overrides the Zipf draw entirely with an explicit
    per-request node stream (see :func:`make_scenario`) — it must hold
    exactly ``num_requests`` entries, and the arrival process stays
    deterministic in ``seed`` either way.  ``arrival_times`` likewise
    overrides the open-loop Poisson draw with an explicit nondecreasing
    per-request arrival epoch array — the cluster router uses both
    overrides to hand each replica its routed *slice* of one shared
    edge-drawn stream, keeping the per-replica sub-workloads on the
    same virtual timeline.  The
    run is single-server: batches execute back to back on the engine,
    exactly how the engine would sit behind one dispatch loop.
    ``queue_limit`` bounds the pending queue (shed-oldest admission
    control); ``None`` admits everything.

    ``service_model`` picks how a batch's service time advances the
    virtual clock.  ``"wall"`` (default) uses the measured ``predict``
    wall time.  ``"critical_path"`` uses the batch's **critical path**
    — the max per-rank CPU busy delta — which is the completion time on
    truly parallel hardware where each rank owns a core.  On an
    oversubscribed or single-core host the ranks time-slice, so wall
    time degenerates to *total* work and cannot see placement quality
    at all; the critical path is exactly the quantity a shard policy
    controls, and it is measured scheduling-independently inside the
    workers.  Engines without rank stats fall back to wall.

    ``updates`` interleaves graph deltas with the reads: a time-sorted
    ``[(virtual_time_s, GraphDelta), ...]`` stream (see
    :func:`make_update_stream`).  Each delta is applied via
    ``engine.apply_delta`` once the virtual clock reaches its timestamp;
    the *measured* wall time of the apply occupies the server, exactly
    like predict() service time, so update cost shows up in read tail
    latency.  Updates left after the last read completes are dropped.
    """
    check_positive_int(num_requests, "num_requests")
    if service_model not in ("wall", "critical_path"):
        raise ValueError(
            f"service_model must be 'wall' or 'critical_path', got {service_model!r}"
        )
    if queue_limit is not None:
        check_positive_int(queue_limit, "queue_limit")
    pending_updates = deque(sorted(updates, key=lambda tu: tu[0])) if updates else deque()
    rng = derive_rng(seed, "serve-workload")
    if nodes is None:
        nodes = engine.dataset.val_idx
        if len(nodes) == 0:
            nodes = np.arange(engine.dataset.num_nodes, dtype=np.int64)
    if node_sequence is not None:
        node_seq = np.asarray(node_sequence, dtype=np.int64)
        if len(node_seq) != num_requests:
            raise ValueError(
                f"node_sequence holds {len(node_seq)} entries, expected {num_requests}"
            )
    else:
        node_seq = zipf_nodes(nodes, num_requests, alpha=zipf_alpha, rng=rng)

    if closed_loop:
        if arrival_times is not None:
            raise ValueError("arrival_times is an open-loop override")
        check_positive_int(concurrency, "concurrency")
        first = min(concurrency, num_requests)
        arrivals: deque = deque((0.0, i) for i in range(first))
        next_issue = first
    else:
        if arrival_times is not None:
            times = np.asarray(arrival_times, dtype=np.float64)
            if len(times) != num_requests:
                raise ValueError(
                    f"arrival_times holds {len(times)} entries, "
                    f"expected {num_requests}"
                )
            if np.any(np.diff(times) < 0.0):
                raise ValueError("arrival_times must be nondecreasing")
        else:
            times = poisson_arrivals(num_requests, rate_rps, rng=rng)
        arrivals = deque(zip(times, range(num_requests)))
        next_issue = num_requests

    batcher = MicroBatcher(
        max_batch, max_wait_ms, metrics=getattr(engine, "metrics", None)
    )
    # engine phase counters are cumulative across runs; report the delta
    engine_phases = getattr(engine, "phases", None)
    phases_before = engine_phases.snapshot() if engine_phases is not None else None
    engine_ranks = getattr(engine, "rank_stats", None)
    ranks_before = engine_ranks.snapshot() if engine_ranks is not None else None
    use_critical_path = service_model == "critical_path" and engine_ranks is not None
    cache_stats = getattr(engine, "cache", None)
    stale_before = cache_stats.stats.stale_hits if cache_stats is not None else 0
    inval_before = cache_stats.stats.invalidated if cache_stats is not None else 0
    latencies = np.zeros(num_requests, dtype=np.float64)
    completed = 0
    shed_count = 0
    max_queue = 0
    service_total = 0.0
    updates_applied = 0
    update_total = 0.0
    now = 0.0

    def admit(t_arr: float, idx: int) -> None:
        """Submit one arrival, shedding the oldest on queue overflow."""
        nonlocal completed, shed_count, max_queue, next_issue
        batcher.submit(Request(idx, int(node_seq[idx]), t_arr))
        if queue_limit is not None and len(batcher) > queue_limit:
            victim = batcher.shed_oldest()
            latencies[victim.id] = np.nan
            shed_count += 1
            completed += 1  # refused immediately — the slot is resolved
            if closed_loop and next_issue < num_requests:
                # the refused client sees its error at shed time and the
                # next closed-loop request is issued right away — at the
                # *front*: ``t_arr`` was just popped from the sorted head,
                # so every remaining entry is >= it, and a tail append
                # behind later completion-issued arrivals would break the
                # deque's time ordering (and with it the shed-oldest and
                # deadline accounting downstream)
                arrivals.appendleft((t_arr, next_issue))
                next_issue += 1
        max_queue = max(max_queue, len(batcher))

    while completed < num_requests:
        # due graph deltas run first: the single server applies them
        # before touching the read queue, and their real wall time
        # advances the virtual clock (reads queue behind the update)
        while pending_updates and pending_updates[0][0] <= now:
            _, delta = pending_updates.popleft()
            start = time.perf_counter()
            engine.apply_delta(delta)
            wall = time.perf_counter() - start
            update_total += wall
            updates_applied += 1
            now += wall
        # admit everything that has arrived by the server-free time
        while arrivals and arrivals[0][0] <= now:
            t_arr, idx = arrivals.popleft()
            admit(t_arr, idx)
        if len(batcher) == 0:
            # idle: jump to the next event, read arrival or graph delta
            now = arrivals[0][0]
            if pending_updates:
                now = min(now, pending_updates[0][0])
            continue
        flush_t = now
        if not batcher.ready(now):
            # idle server, partial batch: it flushes at the oldest
            # request's deadline unless arrivals fill it first
            flush_t = batcher.next_deadline()
            while arrivals and arrivals[0][0] < flush_t and len(batcher) < max_batch:
                t_arr, idx = arrivals.popleft()
                admit(t_arr, idx)
                if len(batcher) >= max_batch:
                    flush_t = t_arr
                else:
                    # an overflow shed may have dropped the request whose
                    # deadline we were waiting on — track the new oldest
                    flush_t = batcher.next_deadline()
        batch = batcher.pop(max(now, flush_t))
        busy_before = tuple(engine_ranks.busy_s) if use_critical_path else ()
        start = time.perf_counter()
        engine.predict([r.node for r in batch])
        service = time.perf_counter() - start
        if use_critical_path:
            critical = max(
                (
                    after - (busy_before[i] if i < len(busy_before) else 0.0)
                    for i, after in enumerate(engine_ranks.busy_s)
                ),
                default=0.0,
            )
            if critical > 0.0:  # a pure cache-hit batch touched no rank
                service = critical
        service_total += service
        done_t = max(now, flush_t) + service
        for r in batch:
            latencies[r.id] = done_t - r.arrival
            completed += 1
            if closed_loop and next_issue < num_requests:
                arrivals.append((done_t, next_issue))
                next_issue += 1
        now = done_t

    duration = max(now, 1e-12)
    served_lat = latencies[~np.isnan(latencies)]
    mean_ms, p50, p95, p99 = _percentile_stats(served_lat)
    if engine_phases is not None:
        deltas = [
            (after - before) * 1e3
            for after, before in zip(engine_phases.snapshot(), phases_before)
        ]
    else:
        deltas = [0.0, 0.0, 0.0, 0.0]
    if engine_ranks is not None:
        balance = RankStats.delta(ranks_before, engine_ranks.snapshot())
    else:
        balance = RankStats()
    return ServingReport(
        mode=engine.mode,
        requests=num_requests,
        duration_s=float(duration),
        service_s=float(service_total),
        throughput_rps=float(len(served_lat) / duration),
        mean_ms=mean_ms,
        p50_ms=p50,
        p95_ms=p95,
        p99_ms=p99,
        mean_batch=batcher.stats.mean_batch,
        full_flushes=batcher.stats.full_flushes,
        deadline_flushes=batcher.stats.deadline_flushes,
        drain_flushes=batcher.stats.drain_flushes,
        cache=engine.cache.stats,
        transport=engine.transport,
        shed_count=shed_count,
        max_queue=max_queue,
        sample_ms=deltas[0],
        merge_ms=deltas[1],
        forward_ms=deltas[2],
        cache_ms=deltas[3],
        updates_applied=updates_applied,
        update_ms=float(update_total * 1e3),
        stale_served=(
            cache_stats.stats.stale_hits - stale_before if cache_stats is not None else 0
        ),
        invalidated=(
            cache_stats.stats.invalidated - inval_before if cache_stats is not None else 0
        ),
        graph_generation=int(getattr(engine, "graph_generation", 0)),
        shard_policy=str(getattr(engine, "shard_policy", "chunk")),
        service_model=service_model if use_critical_path else "wall",
        rank_busy_ms=[b * 1e3 for b in balance.busy_s],
        rank_steals=list(balance.steals),
        steal_count=balance.steal_count,
        imbalance=balance.imbalance,
        latencies_s=latencies,
    )


def _segment_latencies(report: ServingReport) -> np.ndarray:
    """A report's per-request latency array, NaN-filled when unrecorded.

    A synthesised segment (e.g. a crashed replica's refusal report) may
    carry ``latencies_s=None``; booking its requests as NaN keeps the
    merged array one entry per request and counts them as SLO misses.
    """
    if report.latencies_s is None:
        return np.full(report.requests, np.nan, dtype=np.float64)
    return np.asarray(report.latencies_s, dtype=np.float64).ravel()


def merge_reports(
    reports: list[ServingReport], *, concurrent: bool = False
) -> ServingReport:
    """Aggregate segment reports into one.

    Two merge geometries, picked by ``concurrent``:

    * ``concurrent=False`` (default) — **sequential** segments of *one*
      engine (hot-swap benches): durations add, cache/transport come
      from the last segment (the engine's counters are cumulative
      across segments) and so does ``graph_generation``; per-rank
      busy/steal columns are width-padded and summed (same rank set,
      possibly resized between segments).
    * ``concurrent=True`` — **replica** segments that ran side by side
      on the same virtual timeline (the cluster report path, or
      :func:`merge_replica_reports`): the merged duration is the
      wall-clock **max**, so ``throughput_rps`` is total served over
      elapsed time rather than the sum-of-durations underestimate;
      cache/transport stats **add** across replicas (each replica owns
      its counters); ``graph_generation`` is the cluster high-water
      mark; and per-rank busy/steal columns **concatenate** in replica
      order (disjoint rank sets), so imbalance reads across the whole
      cluster.

    Either way percentiles are recomputed over the concatenated served
    latencies, shed/queue/phase/freshness counters add, and mixing
    reports with different ``schema_version`` stamps raises.
    """
    if not reports:
        raise ValueError("merge_reports needs at least one report")
    versions = sorted({r.schema_version for r in reports})
    if len(versions) > 1:
        raise ValueError(
            f"cannot merge reports with mixed schema_versions {versions}"
        )
    if len(reports) == 1:
        return reports[0]
    lats = np.concatenate([_segment_latencies(r) for r in reports])
    served_lat = lats[~np.isnan(lats)]
    if concurrent:
        # replicas ran side by side: elapsed time is the slowest replica
        duration = max(r.duration_s for r in reports)
    else:
        duration = sum(r.duration_s for r in reports)
    if concurrent:
        # disjoint rank sets: concatenate columns in replica order
        rank_busy = [float(b) for r in reports for b in r.rank_busy_ms]
        rank_steals = [int(s) for r in reports for s in r.rank_steals]
    else:
        # per-rank balance: width-pad and sum (a resize may widen the rank
        # set between segments), then recompute imbalance over the totals
        width = max((len(r.rank_busy_ms) for r in reports), default=0)
        rank_busy = [0.0] * width
        rank_steals = [0] * width
        for r in reports:
            for i, b in enumerate(r.rank_busy_ms):
                rank_busy[i] += float(b)
            for i, s in enumerate(r.rank_steals):
                rank_steals[i] += int(s)
    busy_totals = RankStats(busy_s=list(rank_busy), steals=list(rank_steals))
    if concurrent:
        cache = CacheStats(
            hits=sum(r.cache.hits for r in reports),
            misses=sum(r.cache.misses for r in reports),
            evictions=sum(r.cache.evictions for r in reports),
            stale_hits=sum(r.cache.stale_hits for r in reports),
            invalidated=sum(r.cache.invalidated for r in reports),
        )
        transport = TransportStats(
            arena_hits=sum(r.transport.arena_hits for r in reports),
            pickle_fallbacks=sum(r.transport.pickle_fallbacks for r in reports),
        )
        graph_generation = max(r.graph_generation for r in reports)
    else:
        cache = reports[-1].cache
        transport = reports[-1].transport
        graph_generation = reports[-1].graph_generation
    mean_ms, p50, p95, p99 = _percentile_stats(served_lat)
    batches = sum(r.full_flushes + r.deadline_flushes + r.drain_flushes for r in reports)
    served = sum(r.served for r in reports)
    return ServingReport(
        mode=reports[-1].mode,
        requests=sum(r.requests for r in reports),
        duration_s=float(duration),
        service_s=float(sum(r.service_s for r in reports)),
        throughput_rps=float(served / max(duration, 1e-12)),
        mean_ms=mean_ms,
        p50_ms=p50,
        p95_ms=p95,
        p99_ms=p99,
        mean_batch=float(served / batches) if batches else 0.0,
        full_flushes=sum(r.full_flushes for r in reports),
        deadline_flushes=sum(r.deadline_flushes for r in reports),
        drain_flushes=sum(r.drain_flushes for r in reports),
        cache=cache,
        transport=transport,
        shed_count=sum(r.shed_count for r in reports),
        max_queue=max(r.max_queue for r in reports),
        sample_ms=float(sum(r.sample_ms for r in reports)),
        merge_ms=float(sum(r.merge_ms for r in reports)),
        forward_ms=float(sum(r.forward_ms for r in reports)),
        cache_ms=float(sum(r.cache_ms for r in reports)),
        updates_applied=sum(r.updates_applied for r in reports),
        update_ms=float(sum(r.update_ms for r in reports)),
        stale_served=sum(r.stale_served for r in reports),
        invalidated=sum(r.invalidated for r in reports),
        graph_generation=graph_generation,
        shard_policy=reports[-1].shard_policy,
        service_model=reports[-1].service_model,
        rank_busy_ms=rank_busy,
        rank_steals=rank_steals,
        steal_count=busy_totals.steal_count,
        imbalance=busy_totals.imbalance,
        latencies_s=lats,
        schema_version=versions[0],
    )


def merge_replica_reports(reports: list[ServingReport]) -> ServingReport:
    """Fold per-replica reports that ran side by side into one.

    Sugar for ``merge_reports(reports, concurrent=True)`` — the cluster
    report path: wall-clock (max) duration under the merged throughput,
    summed cache/transport, concatenated rank columns.
    """
    return merge_reports(reports, concurrent=True)


def make_refusal_report(mode: str, num_requests: int) -> ServingReport:
    """An all-shed synthetic segment for a replica that crashed mid-burst.

    Every request is booked as refused — ``shed_count == requests`` and
    each latency is NaN — so a cluster merge counts the burst toward
    shed totals and SLO misses while the percentile path stays NaN-free
    (all-shed segments are exactly the `_percentile_stats` edge case).
    """
    check_positive_int(num_requests, "num_requests")
    return ServingReport(
        mode=mode,
        requests=num_requests,
        duration_s=0.0,
        service_s=0.0,
        throughput_rps=0.0,
        mean_ms=0.0,
        p50_ms=0.0,
        p95_ms=0.0,
        p99_ms=0.0,
        mean_batch=0.0,
        full_flushes=0,
        deadline_flushes=0,
        drain_flushes=0,
        cache=CacheStats(),
        transport=TransportStats(),
        shed_count=num_requests,
        latencies_s=np.full(num_requests, np.nan, dtype=np.float64),
    )
