"""Distributed-data-parallel substrate (the ``torch.distributed`` stand-in).

Provides process-group style collectives over two backends:

* ``inline`` — ranks execute sequentially inside one Python process; the
  Multi-Process Engine drives gradient averaging explicitly.  Fully
  deterministic; used for the correctness/convergence experiments.
* ``thread`` — one OS thread per rank with barrier-based collectives.
  numpy releases the GIL inside large kernels, so threads genuinely
  overlap.
* ``process`` — one OS process per rank: collectives fold contributions
  into a shared-memory float64 region sequenced by a cross-process
  barrier (:class:`ProcessWorld`) — the paper's actual deployment shape.

:class:`DistributedDataParallel` implements the paper's semantics rule
(Sec. IV-B2): with ``n`` ranks at per-rank batch ``b/n`` and synchronous
gradient averaging, training is algorithmically equivalent to one process
at batch ``b``.
"""

from repro.distributed.comm import (
    Communicator,
    SingleProcessComm,
    ThreadWorld,
    ThreadCommunicator,
    ProcessWorld,
    ProcessCommunicator,
)
from repro.distributed.ddp import (
    DistributedDataParallel,
    replicate_module,
    average_gradients,
)

__all__ = [
    "Communicator",
    "SingleProcessComm",
    "ThreadWorld",
    "ThreadCommunicator",
    "ProcessWorld",
    "ProcessCommunicator",
    "DistributedDataParallel",
    "replicate_module",
    "average_gradients",
]
