"""Distributed Data Parallel wrapper and helpers.

Implements the paper's semantics-preservation contract (Sec. IV-B2):

* ``replicate_module`` clones a model ``n`` times with *identical*
  weights (DDP's initial broadcast);
* each rank computes gradients on its own ``b/n``-sized mini-batch;
* :func:`average_gradients` / :meth:`DistributedDataParallel.sync_gradients`
  average gradients across ranks so every replica takes the *same*
  synchronous-SGD step — making ``n`` ranks at batch ``b/n``
  algorithmically equivalent to one process at batch ``b``.

Note the factor-of-``n`` subtlety: a mean-reduced loss over ``b/n``
samples produces a gradient whose expectation equals the full-batch
gradient, so *averaging* (not summing) across ranks reproduces the
single-process batch-``b`` mean-loss gradient exactly when the union of
the rank batches equals the original batch.  ``tests/distributed`` checks
this identity to float tolerance.
"""

from __future__ import annotations

import copy
from typing import Sequence

import numpy as np

from repro.autograd.module import Module
from repro.distributed.comm import Communicator, SingleProcessComm

__all__ = ["DistributedDataParallel", "replicate_module", "average_gradients"]


def replicate_module(module: Module, n: int) -> list[Module]:
    """Deep-copy ``module`` ``n`` times (weights start bit-identical)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    replicas = [module] + [copy.deepcopy(module) for _ in range(n - 1)]
    # deep copies share no arrays; assert the state dicts match
    ref = module.state_dict()
    for rep in replicas[1:]:
        for k, v in rep.state_dict().items():
            if not np.array_equal(v, ref[k]):  # pragma: no cover - sanity
                raise AssertionError("replica initialisation diverged")
    return replicas


def average_gradients(modules: Sequence[Module]) -> None:
    """In-place average of parameter gradients across replicas.

    Used by the Multi-Process Engine's ``inline`` backend, where ranks run
    sequentially and no communicator is needed.  Parameters with ``None``
    grads on every rank stay ``None``; a rank mixing ``None`` with real
    grads on others is treated as a zero contribution.
    """
    if not modules:
        raise ValueError("average_gradients needs at least one module")
    param_lists = [m.parameters() for m in modules]
    n_params = len(param_lists[0])
    if any(len(pl) != n_params for pl in param_lists):
        raise ValueError("replicas disagree on parameter count")
    n = len(modules)
    for i in range(n_params):
        grads = [pl[i].grad for pl in param_lists]
        if all(g is None for g in grads):
            continue
        shape = param_lists[0][i].data.shape
        total = np.zeros(shape, dtype=np.float64)
        for g in grads:
            if g is not None:
                total += g
        mean = (total / n).astype(param_lists[0][i].data.dtype)
        for pl in param_lists:
            pl[i].grad = mean.copy()


class DistributedDataParallel:
    """Rank-local DDP wrapper over a communicator.

    Mirrors ``torch.nn.parallel.DistributedDataParallel``: construction
    broadcasts rank 0's weights; ``sync_gradients()`` all-reduce-averages
    gradients after ``backward()``; forward just delegates.
    """

    def __init__(self, module: Module, comm: Communicator | None = None):
        self.module = module
        self.comm = comm if comm is not None else SingleProcessComm()
        # initial weight broadcast so all ranks start identical
        params = module.parameters()
        synced = self.comm.broadcast([p.data for p in params], root=0)
        for p, arr in zip(params, synced):
            p.data = np.asarray(arr, dtype=p.data.dtype)

    def __call__(self, *args, **kwargs):
        return self.module(*args, **kwargs)

    def parameters(self):
        return self.module.parameters()

    def zero_grad(self) -> None:
        self.module.zero_grad()

    def train(self, mode: bool = True):
        self.module.train(mode)
        return self

    def eval(self):
        self.module.eval()
        return self

    def sync_gradients(self) -> None:
        """All-reduce-mean every parameter gradient across ranks."""
        params = self.module.parameters()
        grads = [
            p.grad if p.grad is not None else np.zeros_like(p.data) for p in params
        ]
        averaged = self.comm.allreduce_mean(grads)
        for p, g in zip(params, averaged):
            p.grad = np.asarray(g, dtype=p.data.dtype)
