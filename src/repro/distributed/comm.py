"""Collective communication primitives.

The interface mirrors the subset of ``torch.distributed`` ARGO needs:
``allreduce_mean`` (gradient synchronisation — the synchronous SGD of
paper Sec. IV-A step 2) and ``broadcast`` (initial weight replication).
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np

__all__ = ["Communicator", "SingleProcessComm", "ThreadWorld", "ThreadCommunicator"]


class Communicator:
    """Abstract collective interface bound to one rank."""

    rank: int = 0
    world_size: int = 1

    def allreduce_mean(self, arrays: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Element-wise mean of each array across all ranks."""
        raise NotImplementedError

    def broadcast(self, arrays: Sequence[np.ndarray], root: int = 0) -> list[np.ndarray]:
        """Every rank receives root's arrays."""
        raise NotImplementedError

    def barrier(self) -> None:
        raise NotImplementedError

    def gather(self, value, root: int = 0):
        """Root receives ``[value_rank0, ..., value_rankN]``; others ``None``."""
        raise NotImplementedError


class SingleProcessComm(Communicator):
    """World-size-1 communicator: all collectives are identities."""

    def __init__(self):
        self.rank = 0
        self.world_size = 1

    def allreduce_mean(self, arrays):
        return [np.array(a, copy=True) for a in arrays]

    def broadcast(self, arrays, root: int = 0):
        if root != 0:
            raise ValueError(f"invalid root {root} for world size 1")
        return [np.array(a, copy=True) for a in arrays]

    def barrier(self) -> None:
        return None

    def gather(self, value, root: int = 0):
        return [value]


class ThreadWorld:
    """Shared rendezvous state for a group of thread ranks.

    Collectives are two-phase: contribute under a lock, synchronise on a
    barrier whose *action* (run exactly once, by the last arriver) folds
    the contributions, then a second barrier guarantees every rank has
    read the result before the next collective can overwrite it.
    """

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = world_size
        self._lock = threading.Lock()
        self._acc: list[np.ndarray] | None = None
        self._result: list[np.ndarray] | None = None
        self._bcast: list[np.ndarray] | None = None
        self._gather: dict[int, object] = {}
        self._reduce_barrier = threading.Barrier(world_size, action=self._fold_mean)
        self._bcast_barrier = threading.Barrier(world_size)
        self._gather_barrier = threading.Barrier(world_size, action=None)
        self._exit_barrier = threading.Barrier(world_size)

    def _fold_mean(self) -> None:
        assert self._acc is not None
        self._result = [a / self.world_size for a in self._acc]
        self._acc = None

    def abort(self) -> None:
        """Break all barriers (raises BrokenBarrierError in waiting ranks).

        Called when one rank fails so the others do not deadlock.
        """
        for b in (
            self._reduce_barrier,
            self._bcast_barrier,
            self._gather_barrier,
            self._exit_barrier,
        ):
            b.abort()

    def communicator(self, rank: int) -> "ThreadCommunicator":
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range for world size {self.world_size}")
        return ThreadCommunicator(self, rank)


class ThreadCommunicator(Communicator):
    """Per-rank handle onto a :class:`ThreadWorld`."""

    def __init__(self, world: ThreadWorld, rank: int):
        self.world = world
        self.rank = rank
        self.world_size = world.world_size

    def allreduce_mean(self, arrays):
        arrays = list(arrays)
        w = self.world
        with w._lock:
            if w._acc is None:
                w._acc = [np.asarray(a, dtype=np.float64).copy() for a in arrays]
            else:
                if len(w._acc) != len(arrays):
                    raise ValueError("allreduce arity mismatch across ranks")
                for acc, a in zip(w._acc, arrays):
                    acc += a
        w._reduce_barrier.wait()
        assert w._result is not None
        out = [r.astype(arrays[i].dtype, copy=True) for i, r in enumerate(w._result)]
        w._exit_barrier.wait()
        return out

    def broadcast(self, arrays, root: int = 0):
        w = self.world
        if self.rank == root:
            w._bcast = [np.array(a, copy=True) for a in arrays]
        w._bcast_barrier.wait()
        assert w._bcast is not None
        out = [np.array(a, copy=True) for a in w._bcast]
        w._exit_barrier.wait()
        if self.rank == root:
            w._bcast = None
        return out

    def barrier(self) -> None:
        self.world._bcast_barrier.wait()

    def gather(self, value, root: int = 0):
        w = self.world
        with w._lock:
            w._gather[self.rank] = value
        w._gather_barrier.wait()
        out = [w._gather[r] for r in range(self.world_size)] if self.rank == root else None
        w._exit_barrier.wait()
        if self.rank == root:
            w._gather.clear()
        return out
