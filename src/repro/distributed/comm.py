"""Collective communication primitives.

The interface mirrors the subset of ``torch.distributed`` ARGO needs:
``allreduce_mean`` (gradient synchronisation — the synchronous SGD of
paper Sec. IV-A step 2) and ``broadcast`` (initial weight replication).

Three worlds implement it:

* :class:`SingleProcessComm` — world size 1, identity collectives;
* :class:`ThreadWorld` — thread ranks, lock + barrier rendezvous;
* :class:`ProcessWorld` — OS-process ranks over one shared-memory
  segment (the paper's actual deployment shape): contributions are
  folded into a shared float64 region guarded by a cross-process lock,
  and a reusable cross-process barrier sequences the contribute / read /
  reset phases.  ``gather`` moves small pickled payloads through
  fixed-size per-rank slots in the same segment.
"""

from __future__ import annotations

import pickle
import struct
import threading
import time
from multiprocessing import shared_memory
from typing import Sequence

import multiprocessing as mp

import numpy as np

__all__ = [
    "Communicator",
    "SingleProcessComm",
    "ThreadWorld",
    "ThreadCommunicator",
    "ResizableBarrier",
    "ClaimBoard",
    "ProcessWorld",
    "ProcessCommunicator",
]


class Communicator:
    """Abstract collective interface bound to one rank."""

    rank: int = 0
    world_size: int = 1

    def allreduce_mean(self, arrays: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Element-wise mean of each array across all ranks."""
        raise NotImplementedError

    def broadcast(self, arrays: Sequence[np.ndarray], root: int = 0) -> list[np.ndarray]:
        """Every rank receives root's arrays."""
        raise NotImplementedError

    def barrier(self) -> None:
        raise NotImplementedError

    def gather(self, value, root: int = 0):
        """Root receives ``[value_rank0, ..., value_rankN]``; others ``None``."""
        raise NotImplementedError


class SingleProcessComm(Communicator):
    """World-size-1 communicator: all collectives are identities."""

    def __init__(self):
        self.rank = 0
        self.world_size = 1

    def allreduce_mean(self, arrays):
        return [np.array(a, copy=True) for a in arrays]

    def broadcast(self, arrays, root: int = 0):
        if root != 0:
            raise ValueError(f"invalid root {root} for world size 1")
        return [np.array(a, copy=True) for a in arrays]

    def barrier(self) -> None:
        return None

    def gather(self, value, root: int = 0):
        return [value]


class ThreadWorld:
    """Shared rendezvous state for a group of thread ranks.

    Collectives are two-phase: contribute under a lock, synchronise on a
    barrier whose *action* (run exactly once, by the last arriver) folds
    the contributions, then a second barrier guarantees every rank has
    read the result before the next collective can overwrite it.
    """

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = world_size
        self._lock = threading.Lock()
        self._acc: list[np.ndarray] | None = None
        self._result: list[np.ndarray] | None = None
        self._bcast: list[np.ndarray] | None = None
        self._gather: dict[int, object] = {}
        self._reduce_barrier = threading.Barrier(world_size, action=self._fold_mean)
        self._bcast_barrier = threading.Barrier(world_size)
        self._gather_barrier = threading.Barrier(world_size, action=None)
        self._exit_barrier = threading.Barrier(world_size)

    def _fold_mean(self) -> None:
        assert self._acc is not None
        self._result = [a / self.world_size for a in self._acc]
        self._acc = None

    def abort(self) -> None:
        """Break all barriers (raises BrokenBarrierError in waiting ranks).

        Called when one rank fails so the others do not deadlock.
        """
        for b in (
            self._reduce_barrier,
            self._bcast_barrier,
            self._gather_barrier,
            self._exit_barrier,
        ):
            b.abort()

    def communicator(self, rank: int) -> "ThreadCommunicator":
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range for world size {self.world_size}")
        return ThreadCommunicator(self, rank)


class ThreadCommunicator(Communicator):
    """Per-rank handle onto a :class:`ThreadWorld`."""

    def __init__(self, world: ThreadWorld, rank: int):
        self.world = world
        self.rank = rank
        self.world_size = world.world_size

    def allreduce_mean(self, arrays):
        arrays = list(arrays)
        w = self.world
        with w._lock:
            if w._acc is None:
                w._acc = [np.asarray(a, dtype=np.float64).copy() for a in arrays]
            else:
                if len(w._acc) != len(arrays):
                    raise ValueError("allreduce arity mismatch across ranks")
                for acc, a in zip(w._acc, arrays):
                    acc += a
        w._reduce_barrier.wait()
        assert w._result is not None
        out = [r.astype(arrays[i].dtype, copy=True) for i, r in enumerate(w._result)]
        w._exit_barrier.wait()
        return out

    def broadcast(self, arrays, root: int = 0):
        w = self.world
        if self.rank == root:
            w._bcast = [np.array(a, copy=True) for a in arrays]
        w._bcast_barrier.wait()
        assert w._bcast is not None
        out = [np.array(a, copy=True) for a in w._bcast]
        w._exit_barrier.wait()
        if self.rank == root:
            w._bcast = None
        return out

    def barrier(self) -> None:
        self.world._bcast_barrier.wait()

    def gather(self, value, root: int = 0):
        w = self.world
        with w._lock:
            w._gather[self.rank] = value
        w._gather_barrier.wait()
        out = [w._gather[r] for r in range(self.world_size)] if self.rank == root else None
        w._exit_barrier.wait()
        if self.rank == root:
            w._gather.clear()
        return out


# ----------------------------------------------------------------------
# process backend: collectives over one shared-memory segment
# ----------------------------------------------------------------------

_HEADER_BYTES = 64  # int64 contribution counter, padded to a cache line


class ResizableBarrier:
    """Cross-process reusable barrier whose party count can change.

    ``multiprocessing.Barrier`` fixes its party count at construction,
    which forced the persistent worker pool to pre-create one world per
    candidate size before forking (locks/barriers only travel by
    inheritance).  This barrier keeps its state — ``[parties, count,
    generation, broken]`` — in a shared ``RawArray`` guarded by one
    condition variable, so the *parent* can :meth:`resize` the party
    count between generations and every forked worker sees the change
    through the shared state: one barrier, one world, any active size.

    Semantics mirror ``threading.Barrier`` where they overlap:
    :meth:`wait` returns the rank's arrival index, a timeout or
    :meth:`abort` breaks the barrier permanently
    (``threading.BrokenBarrierError`` for every current and future
    waiter), and generations cycle so the barrier is reusable.
    :meth:`resize` is only legal while no rank is waiting — the pool
    guarantees that by resizing strictly between synchronous
    collectives (the Rebind command rides the FIFO ahead of the next
    plan).
    """

    def __init__(self, parties: int, *, ctx=None):
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        ctx = ctx if ctx is not None else mp.get_context()
        self._cond = ctx.Condition(ctx.Lock())
        self._state = ctx.RawArray("q", 4)  # [parties, count, generation, broken]
        self._state[0] = int(parties)

    @property
    def parties(self) -> int:
        return int(self._state[0])

    @property
    def broken(self) -> bool:
        return bool(self._state[3])

    def wait(self, timeout: float | None = None) -> int:
        """Rendezvous with the other ``parties - 1`` ranks.

        Returns this rank's arrival index (0..parties-1, in arrival
        order — index 0 is *some* rank, exactly one per generation).
        A rank that times out breaks the barrier for everyone.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            if self._state[3]:
                raise threading.BrokenBarrierError
            idx = int(self._state[1])
            self._state[1] = idx + 1
            if idx + 1 == self._state[0]:
                # last arriver opens the next generation
                self._state[1] = 0
                self._state[2] += 1
                self._cond.notify_all()
                return idx
            gen = int(self._state[2])
            while self._state[2] == gen:
                if self._state[3]:
                    raise threading.BrokenBarrierError
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    self._state[3] = 1
                    self._cond.notify_all()
                    raise threading.BrokenBarrierError
                self._cond.wait(remaining)
            if self._state[3]:
                raise threading.BrokenBarrierError
            return idx

    def abort(self) -> None:
        """Break the barrier permanently; wakes every waiter.

        The flag write does not require the lock (racing waiters check
        it on wake, and their own timeouts bound the wait), so a peer
        that died *holding* the condition's lock cannot deadlock the
        aborter — we only take the lock, with a bound, to notify.
        """
        got = self._cond.acquire(timeout=1.0)
        try:
            self._state[3] = 1
            if got:
                self._cond.notify_all()
        finally:
            if got:
                self._cond.release()

    def resize(self, parties: int) -> None:
        """Change the party count; only legal with no rank waiting."""
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        with self._cond:
            if self._state[3]:
                raise RuntimeError("cannot resize a broken barrier")
            if self._state[1] != 0:
                raise RuntimeError("cannot resize while ranks are waiting")
            self._state[0] = int(parties)


class ProcessWorld:
    """Shared rendezvous state for a group of OS-process ranks.

    Parameters
    ----------
    world_size:
        Number of participating processes (the parent is *not* a rank).
    capacity:
        Maximum total float64 elements one ``allreduce_mean``/``broadcast``
        may carry (for gradient sync: the model's parameter count).
    slot_bytes:
        Per-rank pickled-payload budget for ``gather``.
    ctx:
        ``multiprocessing`` context supplying the lock/barrier (defaults
        to the platform default; ``fork`` and ``spawn`` both work — the
        world re-attaches its segment by name when pickled to a spawned
        worker).
    timeout:
        Seconds any rank waits at a collective before declaring the world
        broken (a crashed peer breaks the barrier for everyone).

    The collective protocol is SPMD: every rank must issue the same
    sequence of collectives.  ``allreduce_mean`` is three-phase —
    contribute under the lock, barrier, read, barrier, one rank resets
    the accumulator, barrier — so consecutive collectives can reuse the
    same region without tearing.

    A world is built to be **reused across epochs**: the persistent
    worker pool creates one world per launch and drives every epoch's
    collectives through it (the barrier cycles naturally; the shared
    region is re-zeroed by the counter protocol).  An :meth:`abort`
    poisons the barrier permanently by design: after a failure the
    owning pool tears the world down rather than trusting half-finished
    collective state (check :attr:`broken`).

    The barrier is a :class:`ResizableBarrier`, so **one** world serves
    every active size the pool rebinds to: the parent calls
    :meth:`resize` (shared party count + its own ``world_size``)
    strictly between collectives, and each worker applies the matching
    :meth:`rebind` (local ``world_size`` only — the shared barrier
    state already changed) when its Rebind command arrives.  Growth is
    bounded by the creation size (:attr:`max_world_size`): the
    gather-slot region is laid out once, at creation.
    """

    def __init__(
        self,
        world_size: int,
        capacity: int,
        *,
        slot_bytes: int = 1 << 20,
        ctx=None,
        timeout: float = 120.0,
    ):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        ctx = ctx if ctx is not None else mp.get_context()
        self.world_size = int(world_size)
        #: the creation size — the resize ceiling and slot-region layout
        self.max_world_size = int(world_size)
        self.capacity = int(capacity)
        self.slot_bytes = int(slot_bytes)
        self.timeout = float(timeout)
        size = _HEADER_BYTES + 8 * self.capacity + self.max_world_size * self.slot_bytes
        self._shm = shared_memory.SharedMemory(create=True, size=size)
        self._owner = True
        self._closed = False
        self._lock = ctx.Lock()
        self._barrier = ResizableBarrier(self.world_size, ctx=ctx)
        self._counter()[0] = 0

    # -- shared views (recomputed per process; views don't survive pickling)
    def _counter(self) -> np.ndarray:
        return np.ndarray((1,), dtype=np.int64, buffer=self._shm.buf, offset=0)

    def _region(self) -> np.ndarray:
        return np.ndarray(
            (self.capacity,), dtype=np.float64, buffer=self._shm.buf, offset=_HEADER_BYTES
        )

    def _slot(self, rank: int) -> memoryview:
        start = _HEADER_BYTES + 8 * self.capacity + rank * self.slot_bytes
        return self._shm.buf[start : start + self.slot_bytes]

    # -- spawn support: re-attach the segment by name in the child
    def __getstate__(self):
        return {
            "world_size": self.world_size,
            "max_world_size": self.max_world_size,
            "capacity": self.capacity,
            "slot_bytes": self.slot_bytes,
            "timeout": self.timeout,
            "shm_name": self._shm.name,
            "lock": self._lock,
            "barrier": self._barrier,
        }

    def __setstate__(self, state):
        self.world_size = state["world_size"]
        self.max_world_size = state["max_world_size"]
        self.capacity = state["capacity"]
        self.slot_bytes = state["slot_bytes"]
        self.timeout = state["timeout"]
        self._lock = state["lock"]
        self._barrier = state["barrier"]
        # same no-unregister attach semantics as the graph store
        from repro.shm.arena import attach_segment

        self._shm = attach_segment(state["shm_name"])
        self._owner = False
        self._closed = False

    # ------------------------------------------------------------------
    def _wait(self) -> int:
        """Barrier wait with timeout; returns the rank's arrival index."""
        try:
            return self._barrier.wait(self.timeout)
        except threading.BrokenBarrierError:
            raise RuntimeError(
                "process collective broken (peer crashed or timed out)"
            ) from None

    def abort(self) -> None:
        """Break the barrier so peers blocked in collectives fail fast."""
        self._barrier.abort()

    @property
    def broken(self) -> bool:
        """Whether the world's barrier has been aborted (world unusable)."""
        try:
            return bool(self._barrier.broken)
        except Exception:  # pragma: no cover - manager/ctx quirks
            return True

    def resize(self, world_size: int) -> None:
        """Parent-side size change: shared barrier parties + local size.

        Only legal strictly between collectives (no rank waiting) and
        within the creation size — gather slots for ranks beyond
        :attr:`max_world_size` were never laid out.  Workers pick the
        change up via :meth:`rebind` when their Rebind command arrives;
        until then they are parked in the idle loop, not in a
        collective, so the ordering is safe.
        """
        if not 1 <= world_size <= self.max_world_size:
            raise ValueError(
                f"world_size must be in [1, {self.max_world_size}], got {world_size}"
            )
        self._barrier.resize(world_size)
        self.world_size = int(world_size)

    def rebind(self, world_size: int) -> None:
        """Worker-side size change: local bookkeeping only.

        The shared barrier was already resized by the parent's
        :meth:`resize`; the worker just updates the ``world_size`` its
        communicators divide by and range-check against.  Rebinding onto
        a broken world raises immediately — after an abort the barrier
        can never complete a cycle again, so adopting a new size would
        only defer the failure to the next collective with a less
        attributable error.
        """
        if not 1 <= world_size <= self.max_world_size:
            raise ValueError(
                f"world_size must be in [1, {self.max_world_size}], got {world_size}"
            )
        if self.broken:
            raise RuntimeError(
                "cannot rebind a broken world (a peer aborted or timed out); "
                "relaunch the pool instead"
            )
        self.world_size = int(world_size)

    def communicator(self, rank: int) -> "ProcessCommunicator":
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range for world size {self.world_size}")
        return ProcessCommunicator(self, rank)

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drop this process's mapping; idempotent."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()

    def unlink(self) -> None:
        """Free the segment system-wide (creator only); implies close."""
        if not self._owner:
            raise RuntimeError("only the creating process may unlink the world")
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already reaped
            pass

    def __enter__(self) -> "ProcessWorld":
        return self

    def __exit__(self, *exc) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()

    def __del__(self):  # pragma: no cover - GC safety net
        try:
            if self._owner and not self._closed:
                self.unlink()
        except Exception:
            pass


class ProcessCommunicator(Communicator):
    """Per-rank handle onto a :class:`ProcessWorld` (used inside workers)."""

    def __init__(self, world: ProcessWorld, rank: int):
        self.world = world
        self.rank = rank
        self.world_size = world.world_size

    def _layout(self, arrays: Sequence[np.ndarray]) -> tuple[list[np.ndarray], int]:
        arrays = [np.asarray(a) for a in arrays]
        total = sum(a.size for a in arrays)
        if total > self.world.capacity:
            raise ValueError(
                f"collective payload ({total} elements) exceeds world capacity "
                f"({self.world.capacity})"
            )
        return arrays, total

    def allreduce_mean(self, arrays):
        arrays, total = self._layout(arrays)
        w = self.world
        region = w._region()
        counter = w._counter()
        with w._lock:
            first = counter[0] == 0
            off = 0
            for a in arrays:
                flat = np.asarray(a, dtype=np.float64).ravel()
                if first:
                    region[off : off + flat.size] = flat
                else:
                    region[off : off + flat.size] += flat
                off += flat.size
            counter[0] += 1
        w._wait()  # all contributions folded
        out = []
        off = 0
        for a in arrays:
            mean = region[off : off + a.size] / w.world_size
            out.append(mean.reshape(a.shape).astype(a.dtype, copy=True))
            off += a.size
        idx = w._wait()  # all reads done
        if idx == 0:
            counter[0] = 0
        w._wait()  # reset visible before the next collective contributes
        return out

    def broadcast(self, arrays, root: int = 0):
        arrays, total = self._layout(arrays)
        w = self.world
        region = w._region()
        if self.rank == root:
            off = 0
            for a in arrays:
                flat = np.asarray(a, dtype=np.float64).ravel()
                region[off : off + flat.size] = flat
                off += flat.size
        w._wait()  # root's payload visible
        out = []
        off = 0
        for a in arrays:
            out.append(
                region[off : off + a.size].reshape(a.shape).astype(a.dtype, copy=True)
            )
            off += a.size
        w._wait()  # all reads done before anyone reuses the region
        return out

    def barrier(self) -> None:
        self.world._wait()

    def gather(self, value, root: int = 0):
        w = self.world
        payload = pickle.dumps(value)
        if len(payload) + 8 > w.slot_bytes:
            raise ValueError(
                f"gather payload ({len(payload)} bytes) exceeds slot size "
                f"({w.slot_bytes - 8})"
            )
        slot = w._slot(self.rank)
        slot[:8] = struct.pack("<q", len(payload))
        slot[8 : 8 + len(payload)] = payload
        w._wait()  # all payloads written
        out = None
        if self.rank == root:
            out = []
            for r in range(w.world_size):
                s = w._slot(r)
                (n,) = struct.unpack("<q", s[:8])
                out.append(pickle.loads(bytes(s[8 : 8 + n])))
        w._wait()  # root done reading; slots may be reused
        return out


class ClaimBoard:
    """Cross-process exactly-once claim flags for segment work stealing.

    The coordination half of the steal protocol: the parent publishes a
    batch's segment table through the shared-memory task ring
    (:class:`repro.shm.arena.TaskRing`) and :meth:`reset`\\ s this board
    to the segment count; every rank then walks its priority order
    calling :meth:`try_claim` — the lock + flag array guarantee each
    segment is granted to exactly one rank, whatever the interleaving.

    Like :class:`ResizableBarrier`, the state lives in a ``ctx``
    lock plus a ``RawArray`` (``[num_tasks, claim flags...]``), so the
    board must be created **before** the worker processes fork and
    travel to them by inheritance / as a ``Process`` argument — these
    primitives cannot be pickled through command queues.

    The parent resets strictly between batches (the pool's
    ``collect_results`` barrier serialises batches, and parked ranks
    never touch the board), so no epoch/generation tag is needed: a
    worker only reads the board while its own InferPlan is in flight.
    """

    def __init__(self, capacity: int, *, ctx=None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        ctx = ctx if ctx is not None else mp.get_context()
        self.capacity = int(capacity)
        self._lock = ctx.Lock()
        # [0] = active task count, [1:] = per-task claim flags
        self._state = ctx.RawArray("q", self.capacity + 1)

    def reset(self, num_tasks: int) -> None:
        """Arm the board for a batch of ``num_tasks`` segments (parent)."""
        if not 0 <= num_tasks <= self.capacity:
            raise ValueError(
                f"num_tasks {num_tasks} outside board capacity {self.capacity}"
            )
        import ctypes

        with self._lock:
            ctypes.memset(
                ctypes.addressof(self._state), 0, ctypes.sizeof(self._state)
            )
            self._state[0] = int(num_tasks)

    def try_claim(self, task: int) -> bool:
        """Atomically claim segment ``task``; True iff this caller won it."""
        with self._lock:
            if not 0 <= task < self._state[0]:
                return False
            if self._state[task + 1]:
                return False
            self._state[task + 1] = 1
            return True

    def claimed_count(self) -> int:
        """How many of the armed segments have been claimed so far."""
        with self._lock:
            return int(sum(self._state[1 : self._state[0] + 1]))
