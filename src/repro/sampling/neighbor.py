"""Layered neighbour sampling (GraphSAGE-style, paper Sec. II-B).

For an ``L``-layer model with fanouts ``[k_1, ..., k_L]`` (outermost
layer first, the DGL convention — paper default ``[15, 10, 5]``), the
sampler walks from the seed nodes inwards: the layer-``l`` block connects
each destination node to at most ``k_l`` of its in-neighbours, chosen
uniformly without replacement.  Nodes with degree ``<= k`` keep all their
neighbours.

The whole per-layer step is vectorised: neighbour lists for the entire
frontier are gathered at once with :meth:`CSRGraph.gather_neighbors`, and
the without-replacement choice is made with a single vectorised
random-key-sort trick instead of a per-node ``rng.choice`` loop.  The
sampler accepts any :class:`~repro.graph.csr.GraphView`: on a
:class:`~repro.graph.delta.LayeredCSR` the gather returns merged
base+delta adjacency, so streamed edges participate in sampling with no
kernel change.

RNG draw-order contract
-----------------------
The per-call draw pattern is load-bearing: serving caches and the
pool/inline parity guarantee both assume a node's sampled frontier is a
pure function of its RNG stream.  Per layer, :func:`sample_neighbors_uniform`
makes exactly **one** ``rng.random(deg_sum)`` call over all candidate
edges of the frontier — candidates ordered by frontier position, each
node's candidates in the view's (merged, once deltas exist) adjacency
order, with ``deg_sum`` including delta edges — and **no call at all** when
the frontier has zero candidates.  The fused multi-request path
(:meth:`NeighborSampler.sample_merged`) reproduces this stream-for-stream
(:func:`repro.sampling.batch.draw_segment_keys`), which is what makes it
bit-identical to looping :meth:`NeighborSampler.sample` per request.
Any change to the draw pattern here must be mirrored there.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.graph.csr import GraphView
from repro.sampling.base import Sampler, register_sampler
from repro.sampling.batch import (
    MergedFrontier,
    build_merged_block,
    check_seed_batches,
    draw_segment_keys,
    select_by_keys,
)
from repro.sampling.block import Block, MiniBatch
from repro.utils.rng import as_generator

__all__ = ["NeighborSampler", "sample_neighbors_uniform"]


def sample_neighbors_uniform(
    graph: GraphView, nodes: np.ndarray, fanout: int, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Sample up to ``fanout`` in-neighbours per node, without replacement.

    Returns ``(src, dst_pos)`` where ``src`` are global neighbour ids and
    ``dst_pos[e]`` is the position in ``nodes`` the edge points to.

    Implementation: gather all candidate edges, assign each a uniform
    random key with one ``rng.random(deg_sum)`` call (none when there are
    no candidates — see the module docstring's draw-order contract), sort
    keys *within each destination segment*, and keep the first
    ``min(fanout, deg)`` of each segment
    (:func:`repro.sampling.batch.select_by_keys`).  This is an exact
    uniform without-replacement sample and runs in ``O(E_frontier log)``
    with no Python-level loop.
    """
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    nodes = np.asarray(nodes, dtype=np.int64)
    srcs, offsets = graph.gather_neighbors(nodes)
    if len(srcs) == 0:
        return srcs, np.empty(0, dtype=np.int64)
    keys = rng.random(len(srcs))
    return select_by_keys(srcs, offsets, fanout, keys)


def _build_block(
    dst_ids: np.ndarray, src_global: np.ndarray, dst_pos: np.ndarray
) -> Block:
    """Assemble a Block given sampled edges in (global-src, dst-position) form.

    Source node set = destination prefix + newly-seen neighbours, so the
    prefix convention holds by construction.
    """
    # unique neighbours not already among the destinations, keep stable order
    uniq = np.unique(src_global)
    is_dst = np.isin(uniq, dst_ids, assume_unique=True)
    extra = uniq[~is_dst]
    src_ids = np.concatenate([dst_ids, extra])
    # map global -> local index in src_ids
    lookup_keys = src_ids
    sorter = np.argsort(lookup_keys, kind="stable")
    pos = sorter[np.searchsorted(lookup_keys, src_global, sorter=sorter)]
    return Block(src_ids=src_ids, num_dst=len(dst_ids), edge_src=pos, edge_dst=dst_pos)


@register_sampler("neighbor")
class NeighborSampler(Sampler):
    """Uniform layered neighbour sampler.

    Parameters
    ----------
    fanouts:
        Per-layer sample sizes, outermost (seed) layer first; the paper
        uses ``[15, 10, 5]`` — note the sampler *walks* the list in
        reverse so that ``fanouts[0]`` applies at the layer nearest the
        seeds, matching DGL's ``NeighborSampler([15, 10, 5])``.
    """

    def __init__(self, fanouts: list[int] | tuple[int, ...] = (15, 10, 5)):
        fanouts = [int(f) for f in fanouts]
        if not fanouts or any(f < 1 for f in fanouts):
            raise ValueError(f"fanouts must be positive ints, got {fanouts}")
        self.fanouts = fanouts
        self.num_layers = len(fanouts)

    def sample(self, graph: GraphView, seeds: np.ndarray, *, rng=None) -> MiniBatch:
        rng = as_generator(rng)
        seeds = np.asarray(seeds, dtype=np.int64)
        if len(seeds) == 0:
            raise ValueError("cannot sample an empty seed batch")
        if len(np.unique(seeds)) != len(seeds):
            raise ValueError("seed nodes must be unique within a batch")
        blocks: list[Block] = []
        frontier = seeds
        # innermost fanout is applied last in model order; we build from the
        # output layer inwards, then reverse.
        for fanout in self.fanouts:
            src_global, dst_pos = sample_neighbors_uniform(graph, frontier, fanout, rng)
            block = _build_block(frontier, src_global, dst_pos)
            blocks.append(block)
            frontier = block.src_ids
        blocks.reverse()
        return MiniBatch(seeds=seeds, blocks=blocks)

    def sample_merged(
        self,
        graph: GraphView,
        seed_batches: Sequence[np.ndarray],
        rngs: Sequence[np.random.Generator],
        *,
        phases=None,
    ) -> MergedFrontier:
        """Fused multi-request sampling: one NumPy pass per layer.

        Bit-identical to ``merge_frontiers([self.sample(graph, s, rng=r)
        for s, r in zip(seed_batches, rngs)])`` — each segment's raw
        uniform draws come from its own generator in the exact looped
        order (module docstring) — but the gather, the random-key sort
        and the block assembly each run once over the concatenated
        frontier instead of once per request.
        """
        if type(self).sample is not NeighborSampler.sample:
            # a subclass customised the per-request path; the fused
            # kernel cannot promise bit-identity to it — loop instead
            return super().sample_merged(graph, seed_batches, rngs, phases=phases)
        seed_batches = check_seed_batches(seed_batches, rngs)
        request_rows = np.zeros(len(seed_batches) + 1, dtype=np.int64)
        np.cumsum([len(s) for s in seed_batches], out=request_rows[1:])
        frontier = np.concatenate(seed_batches)
        splits = request_rows
        blocks: list[Block] = []
        sample_s = 0.0
        merge_s = 0.0
        for fanout in self.fanouts:
            start = time.perf_counter()
            srcs, offsets = graph.gather_neighbors(frontier)
            seg_counts = offsets[splits[1:]] - offsets[splits[:-1]]
            keys = draw_segment_keys(rngs, seg_counts)
            if len(srcs):
                src_global, dst_pos = select_by_keys(srcs, offsets, fanout, keys)
            else:
                src_global, dst_pos = srcs, np.empty(0, dtype=np.int64)
            mid = time.perf_counter()
            block = build_merged_block(
                frontier, splits, src_global, dst_pos, graph.num_nodes
            )
            blocks.append(block)
            frontier = block.src_ids
            splits = block.src_splits
            end = time.perf_counter()
            sample_s += mid - start
            merge_s += end - mid
        blocks.reverse()
        if phases is not None:
            phases.sample_s += sample_s
            phases.merge_s += merge_s
        return MergedFrontier(
            blocks=blocks,
            seeds=np.concatenate(seed_batches),
            request_rows=request_rows,
        )