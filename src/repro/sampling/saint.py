"""GraphSAINT-style random-walk sampler (paper ref. [18], extension).

The paper evaluates Neighbor and ShaDow sampling but stresses that ARGO
is sampler-agnostic; GraphSAINT is the third sampler family its
background cites.  We implement the random-walk variant: from each seed,
run a fixed-length random walk over in-neighbours, take the union of
visited nodes as the subgraph node set, induce the subgraph, and (like
ShaDow) run all GNN layers on it.

The walk is vectorised: all seeds advance one hop per step via a single
gathered neighbour lookup.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.base import Sampler, register_sampler
from repro.sampling.block import Block, MiniBatch
from repro.utils.rng import as_generator

__all__ = ["SaintRWSampler", "random_walk"]


def random_walk(
    graph: CSRGraph, starts: np.ndarray, walk_length: int, rng: np.random.Generator
) -> np.ndarray:
    """Vectorised uniform random walks over in-neighbours.

    Returns an ``(len(starts), walk_length + 1)`` array of node ids;
    walks stopping at isolated nodes repeat the final node.
    """
    if walk_length < 0:
        raise ValueError(f"walk_length must be >= 0, got {walk_length}")
    starts = np.asarray(starts, dtype=np.int64)
    out = np.empty((len(starts), walk_length + 1), dtype=np.int64)
    out[:, 0] = starts
    current = starts.copy()
    n_edges = graph.num_edges
    for step in range(1, walk_length + 1):
        degs = graph.in_degree(current)
        # pick a uniform in-neighbour where one exists; clip the gather
        # index so isolated nodes (including a trailing zero-degree node,
        # whose offset equals len(indices)) never index out of bounds —
        # their picks are discarded by the where() below anyway.
        offsets = graph.indptr[current]
        pick = (rng.random(len(current)) * np.maximum(degs, 1)).astype(np.int64)
        idx = np.minimum(offsets + np.minimum(pick, np.maximum(degs - 1, 0)), max(n_edges - 1, 0))
        nxt = graph.indices[idx] if n_edges else current
        current = np.where(degs > 0, nxt, current)
        out[:, step] = current
    return out


@register_sampler("saint-rw")
class SaintRWSampler(Sampler):
    """Random-walk subgraph sampler (GraphSAINT-RW flavour).

    Parameters
    ----------
    walk_length:
        Hops per walk (GraphSAINT default 2-4; we default to 3).
    num_layers:
        GNN depth run on the induced subgraph.
    """

    def __init__(self, walk_length: int = 3, num_layers: int = 3):
        if walk_length < 1:
            raise ValueError(f"walk_length must be >= 1, got {walk_length}")
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.walk_length = int(walk_length)
        self.num_layers = int(num_layers)

    def sample(self, graph: CSRGraph, seeds: np.ndarray, *, rng=None) -> MiniBatch:
        rng = as_generator(rng)
        seeds = np.asarray(seeds, dtype=np.int64)
        if len(seeds) == 0:
            raise ValueError("cannot sample an empty seed batch")
        if len(np.unique(seeds)) != len(seeds):
            raise ValueError("seed nodes must be unique within a batch")

        walks = random_walk(graph, seeds, self.walk_length, rng)
        visited = np.unique(walks)
        extras = np.setdiff1d(visited, seeds, assume_unique=False)
        node_set = np.concatenate([seeds, extras])  # seeds-first ordering

        sub, _ = graph.subgraph(node_set)
        sub_src, sub_dst = sub.to_edge_index()
        full = Block(
            src_ids=node_set,
            num_dst=len(node_set),
            edge_src=sub_src,
            edge_dst=sub_dst,
        )
        seed_mask = sub_dst < len(seeds)
        last = Block(
            src_ids=node_set,
            num_dst=len(seeds),
            edge_src=sub_src[seed_mask],
            edge_dst=sub_dst[seed_mask],
        )
        blocks = [full] * (self.num_layers - 1) + [last]
        return MiniBatch(seeds=seeds, blocks=blocks)
