"""Sampler base class and registry."""

from __future__ import annotations

import time
from typing import Callable, Dict, Sequence

import numpy as np

from repro.graph.csr import GraphView
from repro.sampling.batch import MergedFrontier, check_seed_batches, merge_frontiers
from repro.sampling.block import MiniBatch

__all__ = ["Sampler", "SAMPLER_REGISTRY", "make_sampler", "register_sampler"]


class Sampler:
    """Abstract mini-batch sampler.

    A sampler turns ``(graph, seed nodes)`` into a :class:`MiniBatch` of
    message-flow blocks.  Samplers are stateless apart from the RNG passed
    per call, so one sampler instance can be shared by all ranks of the
    Multi-Process Engine.

    ``graph`` is any :class:`~repro.graph.csr.GraphView` — the frozen
    :class:`~repro.graph.csr.CSRGraph` or a delta-overlaying
    :class:`~repro.graph.delta.LayeredCSR`.  Samplers only touch the
    protocol surface (``gather_neighbors``/``subgraph``/``num_nodes``),
    so both the looped and the fused ``sample_merged`` kernels see merged
    adjacency automatically once deltas exist; the RNG draw-order
    contract (:mod:`repro.sampling.batch`) is stated over the view's
    merged per-node neighbour order, with ``deg_sum`` including delta
    edges.
    """

    #: how many GNN layers the produced blocks feed (set by subclasses)
    num_layers: int = 0

    def sample(self, graph: GraphView, seeds: np.ndarray, *, rng=None) -> MiniBatch:
        raise NotImplementedError

    def sample_merged(
        self,
        graph: GraphView,
        seed_batches: Sequence[np.ndarray],
        rngs: Sequence[np.random.Generator],
        *,
        phases=None,
    ) -> MergedFrontier:
        """Sample one independent request segment per seed batch, merged.

        Segment ``k`` draws exactly what ``self.sample(graph,
        seed_batches[k], rng=rngs[k])`` would — each from its own
        generator — and the segments are concatenated block-diagonally
        (:func:`~repro.sampling.batch.merge_frontiers`).  This default
        is the looped reference; samplers with a vectorised multi-seed
        kernel (neighbor, shadow) override it with a fused, bit-identical
        implementation.  ``phases`` (a
        :class:`~repro.utils.phases.PhaseStats`) splits the time spent
        drawing frontiers from the time assembling the merged layout.
        """
        seed_batches = check_seed_batches(seed_batches, rngs)
        start = time.perf_counter()
        batches = [
            self.sample(graph, seeds, rng=rng)
            for seeds, rng in zip(seed_batches, rngs)
        ]
        mid = time.perf_counter()
        merged = merge_frontiers(batches)
        if phases is not None:
            phases.sample_s += mid - start
            phases.merge_s += time.perf_counter() - mid
        return merged

    @property
    def name(self) -> str:
        return type(self).__name__


SAMPLER_REGISTRY: Dict[str, Callable[..., Sampler]] = {}


def register_sampler(name: str):
    """Class decorator adding a sampler to the registry."""

    def deco(cls):
        SAMPLER_REGISTRY[name] = cls
        return cls

    return deco


def make_sampler(name: str, **kwargs) -> Sampler:
    """Instantiate a registered sampler: ``neighbor`` or ``shadow``.

    Paper-default fanouts are used when none are given: ``[15, 10, 5]``
    for neighbour sampling, ``[10, 5]`` for ShaDow.
    """
    key = name.lower()
    if key not in SAMPLER_REGISTRY:
        raise KeyError(f"unknown sampler {name!r}; known: {sorted(SAMPLER_REGISTRY)}")
    return SAMPLER_REGISTRY[key](**kwargs)
