"""Sampler base class and registry."""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.block import MiniBatch

__all__ = ["Sampler", "SAMPLER_REGISTRY", "make_sampler", "register_sampler"]


class Sampler:
    """Abstract mini-batch sampler.

    A sampler turns ``(graph, seed nodes)`` into a :class:`MiniBatch` of
    message-flow blocks.  Samplers are stateless apart from the RNG passed
    per call, so one sampler instance can be shared by all ranks of the
    Multi-Process Engine.
    """

    #: how many GNN layers the produced blocks feed (set by subclasses)
    num_layers: int = 0

    def sample(self, graph: CSRGraph, seeds: np.ndarray, *, rng=None) -> MiniBatch:
        raise NotImplementedError

    @property
    def name(self) -> str:
        return type(self).__name__


SAMPLER_REGISTRY: Dict[str, Callable[..., Sampler]] = {}


def register_sampler(name: str):
    """Class decorator adding a sampler to the registry."""

    def deco(cls):
        SAMPLER_REGISTRY[name] = cls
        return cls

    return deco


def make_sampler(name: str, **kwargs) -> Sampler:
    """Instantiate a registered sampler: ``neighbor`` or ``shadow``.

    Paper-default fanouts are used when none are given: ``[15, 10, 5]``
    for neighbour sampling, ``[10, 5]`` for ShaDow.
    """
    key = name.lower()
    if key not in SAMPLER_REGISTRY:
        raise KeyError(f"unknown sampler {name!r}; known: {sorted(SAMPLER_REGISTRY)}")
    return SAMPLER_REGISTRY[key](**kwargs)
