"""Vectorised multi-seed frontier sampling and the merged-frontier layout.

The serving hot path used to sample each request node with its own
``sampler.sample`` call — one CSR gather, one lexsort and one block
assembly *per node* — and then concatenate the per-node blocks with
:func:`merge_frontiers`.  After the merged forward was vectorised, that
Python loop was ~80% of merged service time.  This module fuses the
loop: :meth:`~repro.sampling.neighbor.NeighborSampler.sample_merged`
and :meth:`~repro.sampling.shadow.ShadowSampler.sample_merged` draw a
whole micro-batch's frontiers in one NumPy pass per layer and emit the
block-diagonal :class:`MergedFrontier` directly, bit-identical to the
looped sample-then-merge path.

RNG draw-order contract
-----------------------
Bit-identity rests on a strict contract about *where random numbers
come from and in what order they are consumed*:

* every request segment draws from **its own** generator (serving: the
  per-node ``derive_rng(seed, "serve", node)`` stream; training: the
  per-step ``derive_rng(seed, "batch", epoch, rank, step)`` stream) —
  segments never share or interleave streams;
* per segment and per layer, the looped path makes exactly one
  ``rng.random(deg_sum)`` call over that segment's candidate edges — in
  frontier order, candidates in the graph view's adjacency order (for a
  :class:`~repro.graph.delta.LayeredCSR` that is the *merged* order —
  base slice then delta slices per node — and ``deg_sum`` includes
  delta edges) — and makes **no call at all** when the segment has zero
  candidates
  (:func:`repro.sampling.neighbor.sample_neighbors_uniform` returns
  before drawing).  :func:`draw_segment_keys` reproduces both rules
  exactly, so each stream is consumed identically;
* the without-replacement choice is a random-key sort.  One *global*
  ``np.lexsort((keys, seg_ids))`` equals the per-segment sorts because
  lexsort is stable: rows are grouped by segment first and tie-broken
  by original index, exactly as each solo sort would.

Everything downstream of the key draws is then free to vectorise across
segments: one :meth:`~repro.graph.csr.CSRGraph.gather_neighbors` over
the concatenated frontier, one segmented key sort
(:func:`select_by_keys`), and one composite-key block build
(:func:`build_merged_block`) that produces ``src_splits`` /
``dst_splits`` / ``dst_positions`` without materialising per-request
MiniBatches.  Composite keys ``seg * num_nodes + global_id`` make one
``np.unique``/``searchsorted`` act as an independent per-segment
unique/lookup (segments cannot collide across the ``num_nodes``
stride).

The numerics contract of the merged layout itself (why requests are
never deduplicated against each other, why edges stay
request-contiguous, why the matmul stays segmented) is documented with
:func:`merge_frontiers` below and enforced by
:func:`validate_merged`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.sampling.block import Block, MiniBatch

__all__ = [
    "MergedFrontier",
    "merge_frontiers",
    "split_merged",
    "validate_merged",
    "draw_segment_keys",
    "select_by_keys",
    "build_merged_block",
    "check_seed_batches",
    "estimate_request_costs",
]


@dataclass
class MergedFrontier:
    """One micro-batch's union subgraph plus its per-request bookkeeping.

    ``blocks`` satisfy the model-forward chain exactly like a single
    request's blocks do (layer ``l``'s merged destination rows are layer
    ``l+1``'s merged source rows); ``request_rows`` maps request ``k`` to
    its output-row range ``[request_rows[k], request_rows[k + 1])`` of
    the final layer — one row per request for single-node serving.
    """

    blocks: list[Block]
    seeds: np.ndarray
    request_rows: np.ndarray

    @property
    def num_requests(self) -> int:
        return len(self.request_rows) - 1

    @property
    def input_ids(self) -> np.ndarray:
        """Global ids whose raw features feed the first merged layer."""
        return self.blocks[0].src_ids

    @property
    def total_src_nodes(self) -> int:
        return sum(b.num_src for b in self.blocks)


def merge_frontiers(batches: list[MiniBatch]) -> MergedFrontier:
    """Concatenate per-request :class:`MiniBatch` frontiers block-diagonally.

    Layer ``l``'s merged block is the disjoint union of every request's
    layer-``l`` block: source/destination rows are request-concatenated,
    local edge endpoints are shifted by their request's segment offset,
    and the segment offsets ride along as ``src_splits``/``dst_splits``
    so the GNN layers can keep per-request BLAS geometry.  Requests stay
    fully independent inside the merge — no rows are shared, because two
    requests sampling the same node draw different neighbour multisets
    from their own RNG streams — which is exactly what preserves
    per-request numerics bit-for-bit.

    This is the reference implementation of the merged layout; the
    vectorised ``sample_merged`` paths emit the same structure directly
    and are tested bit-identical against it.
    """
    if not batches:
        raise ValueError("merge_frontiers needs at least one MiniBatch")
    num_layers = batches[0].num_layers
    if any(mb.num_layers != num_layers for mb in batches):
        raise ValueError("all requests must have the same number of layers")
    merged_blocks: list[Block] = []
    for layer in range(num_layers):
        blocks = [mb.blocks[layer] for mb in batches]
        src_splits = np.zeros(len(blocks) + 1, dtype=np.int64)
        np.cumsum([b.num_src for b in blocks], out=src_splits[1:])
        dst_splits = np.zeros(len(blocks) + 1, dtype=np.int64)
        np.cumsum([b.num_dst for b in blocks], out=dst_splits[1:])
        merged_blocks.append(
            Block(
                src_ids=np.concatenate([b.src_ids for b in blocks]),
                num_dst=int(dst_splits[-1]),
                edge_src=np.concatenate(
                    [b.edge_src + off for b, off in zip(blocks, src_splits[:-1])]
                ),
                edge_dst=np.concatenate(
                    [b.edge_dst + off for b, off in zip(blocks, dst_splits[:-1])]
                ),
                src_splits=src_splits,
                dst_splits=dst_splits,
            )
        )
    request_rows = np.zeros(len(batches) + 1, dtype=np.int64)
    np.cumsum([len(mb.seeds) for mb in batches], out=request_rows[1:])
    return MergedFrontier(
        blocks=merged_blocks,
        seeds=np.concatenate([mb.seeds for mb in batches]),
        request_rows=request_rows,
    )


def split_merged(merged: MergedFrontier) -> list[MiniBatch]:
    """Slice a :class:`MergedFrontier` back into per-request MiniBatches.

    The exact inverse of :func:`merge_frontiers` (label-less): because
    merged edges are request-contiguous and ``edge_dst`` is
    non-decreasing, each request's edge range is recovered with one
    ``searchsorted`` against ``dst_splits``.  The training loader uses
    this to sample a span of batches in one fused pass and still hand
    the trainer ordinary per-step MiniBatches.
    """
    out: list[MiniBatch] = []
    layer_edges = [
        np.searchsorted(blk.edge_dst, blk.dst_splits, side="left")
        for blk in merged.blocks
    ]
    for k in range(merged.num_requests):
        blocks = []
        for blk, e_splits in zip(merged.blocks, layer_edges):
            s0, s1 = blk.src_splits[k], blk.src_splits[k + 1]
            d0, d1 = blk.dst_splits[k], blk.dst_splits[k + 1]
            e0, e1 = e_splits[k], e_splits[k + 1]
            blocks.append(
                Block(
                    src_ids=blk.src_ids[s0:s1],
                    num_dst=int(d1 - d0),
                    edge_src=blk.edge_src[e0:e1] - s0,
                    edge_dst=blk.edge_dst[e0:e1] - d0,
                )
            )
        seeds = merged.seeds[merged.request_rows[k] : merged.request_rows[k + 1]]
        out.append(MiniBatch(seeds=seeds, blocks=blocks))
    return out


def validate_merged(merged: MergedFrontier, batches: list[MiniBatch]) -> None:
    """Assert the merged layout maps back onto every solo frontier.

    The debugging/test-battery counterpart of :func:`merge_frontiers`:
    for each request segment and layer, the sliced-out rows and
    offset-corrected edges must equal the request's own block, and the
    layer chain (merged destinations == next layer's merged sources)
    must hold.  Raises ``AssertionError`` on any violation.
    """
    assert merged.num_requests == len(batches)
    for layer, blk in enumerate(merged.blocks):
        assert blk.num_segments == len(batches)
        # per-request segment round-trip
        edge_seg = np.searchsorted(blk.src_splits, blk.edge_src, side="right") - 1
        for k, mb in enumerate(batches):
            solo = mb.blocks[layer]
            s0, s1 = blk.src_splits[k], blk.src_splits[k + 1]
            d0, d1 = blk.dst_splits[k], blk.dst_splits[k + 1]
            assert s1 - s0 == solo.num_src and d1 - d0 == solo.num_dst
            assert np.array_equal(blk.src_ids[s0:s1], solo.src_ids)
            mask = edge_seg == k
            assert int(mask.sum()) == solo.num_edges
            assert np.array_equal(blk.edge_src[mask] - s0, solo.edge_src)
            assert np.array_equal(blk.edge_dst[mask] - d0, solo.edge_dst)
            # edges stay request-contiguous in original order: identical
            # per-row accumulation order in every scatter reduction
            idx = np.flatnonzero(mask)
            assert len(idx) == 0 or np.array_equal(
                idx, np.arange(idx[0], idx[0] + len(idx))
            )
        assert np.array_equal(
            blk.dst_ids, np.concatenate([mb.blocks[layer].dst_ids for mb in batches])
        )
        if layer + 1 < len(merged.blocks):
            # the model chain: this layer's output rows are exactly the
            # next merged block's source rows
            assert np.array_equal(blk.dst_ids, merged.blocks[layer + 1].src_ids)
    assert np.array_equal(merged.blocks[-1].dst_ids, merged.seeds)


# ----------------------------------------------------------------------
# vectorised multi-segment sampling kernels
# ----------------------------------------------------------------------


def check_seed_batches(
    seed_batches: Sequence[np.ndarray], rngs: Sequence[np.random.Generator]
) -> list[np.ndarray]:
    """Validate one seed array + generator per request segment.

    Mirrors ``Sampler.sample``'s own input checks (non-empty, unique
    within a segment) so the fused path rejects exactly what the looped
    path would.
    """
    if not len(seed_batches):
        raise ValueError("sample_merged needs at least one seed batch")
    if len(rngs) != len(seed_batches):
        raise ValueError(
            f"got {len(seed_batches)} seed batches but {len(rngs)} generators"
        )
    out = []
    for seeds in seed_batches:
        seeds = np.asarray(seeds, dtype=np.int64)
        if len(seeds) == 0:
            raise ValueError("cannot sample an empty seed batch")
        if len(np.unique(seeds)) != len(seeds):
            raise ValueError("seed nodes must be unique within a batch")
        out.append(seeds)
    return out


def draw_segment_keys(
    rngs: Sequence[np.random.Generator], seg_counts: np.ndarray
) -> np.ndarray:
    """One uniform sort key per candidate edge, segment-striped.

    Segment ``k``'s ``seg_counts[k]`` keys come from ``rngs[k]`` via a
    single ``rngs[k].random(count)`` call; segments with zero candidates
    draw **nothing** (their stream is untouched).  Both rules match the
    looped path's draws exactly — see the module docstring's RNG
    draw-order contract.
    """
    total = int(seg_counts.sum())
    keys = np.empty(total, dtype=np.float64)
    off = 0
    for rng, count in zip(rngs, seg_counts):
        count = int(count)
        if count:
            keys[off : off + count] = rng.random(count)
            off += count
    return keys


def select_by_keys(
    srcs: np.ndarray, offsets: np.ndarray, fanout: int, keys: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Keep the ``min(fanout, deg)`` lowest-key candidates per frontier node.

    The random-key-sort without-replacement kernel shared by the looped
    (:func:`repro.sampling.neighbor.sample_neighbors_uniform`) and fused
    paths: ``srcs``/``offsets`` are a
    :meth:`~repro.graph.csr.CSRGraph.gather_neighbors` result over the
    (possibly concatenated multi-request) frontier and ``keys`` holds
    one sort key per candidate.  Returns ``(src_global, dst_pos)`` with
    ``dst_pos`` indexing the frontier.  The lexsort is stable, so one
    call over a concatenated frontier equals independent per-segment
    calls — the fused path's segments cannot perturb each other.
    """
    if fanout < 1:
        raise ValueError(f"fanout must be >= 1, got {fanout}")
    if len(srcs) == 0:
        return srcs, np.empty(0, dtype=np.int64)
    degs = np.diff(offsets)
    seg_ids = np.repeat(np.arange(len(degs), dtype=np.int64), degs)
    # sort by (frontier position, key): stable grouping with random
    # order inside each node's candidate list
    order = np.lexsort((keys, seg_ids))
    srcs_sorted = srcs[order]
    # rank of each edge within its segment after the random sort
    ranks = np.arange(len(srcs)) - np.repeat(offsets[:-1], degs)
    keep = ranks < np.minimum(degs, fanout)[seg_ids]
    return srcs_sorted[keep], seg_ids[keep]


def build_merged_block(
    frontier: np.ndarray,
    splits: np.ndarray,
    src_global: np.ndarray,
    dst_pos: np.ndarray,
    num_nodes: int,
) -> Block:
    """Assemble one merged block from multi-request sampled edges.

    ``frontier``/``splits`` are the concatenated destination ids and
    their per-request offsets; ``src_global``/``dst_pos`` are the
    sampled edges (``dst_pos`` indexing ``frontier``).  Per request the
    result is exactly :func:`_build_block`'s — destination prefix, then
    the unseen neighbours in ascending id order — but all requests are
    built in one pass over composite keys ``seg * num_nodes + id``
    (one ``np.unique`` is then an independent per-segment unique, since
    segments occupy disjoint ``num_nodes``-strided ranges).
    """
    splits = np.asarray(splits, dtype=np.int64)
    num_segments = len(splits) - 1
    dst_counts = np.diff(splits)
    frontier_seg = np.repeat(np.arange(num_segments, dtype=np.int64), dst_counts)
    # which request each sampled edge belongs to, from its dst position
    edge_seg = np.searchsorted(splits, dst_pos, side="right") - 1
    edge_ce = edge_seg * num_nodes + src_global
    uniq_ce = np.unique(edge_ce)
    # membership of each unique (seg, id) among that segment's destinations
    dst_ce_sorted = np.sort(frontier_seg * num_nodes + frontier)
    pos = np.searchsorted(dst_ce_sorted, uniq_ce)
    found = pos < len(dst_ce_sorted)
    found[found] = dst_ce_sorted[pos[found]] == uniq_ce[found]
    extra_ce = uniq_ce[~found]  # per segment: ascending, disjoint from dsts
    extra_seg = extra_ce // num_nodes
    extra_counts = np.bincount(extra_seg, minlength=num_segments)
    src_counts = dst_counts + extra_counts
    src_splits = np.zeros(num_segments + 1, dtype=np.int64)
    np.cumsum(src_counts, out=src_splits[1:])
    # scatter: each segment's sources are its destination prefix followed
    # by its extra neighbours (ascending) — the solo layout, concatenated
    src_ids = np.empty(int(src_splits[-1]), dtype=np.int64)
    dst_rows = src_splits[frontier_seg] + (
        np.arange(len(frontier), dtype=np.int64) - splits[frontier_seg]
    )
    src_ids[dst_rows] = frontier
    if len(extra_ce):
        extra_splits = np.zeros(num_segments + 1, dtype=np.int64)
        np.cumsum(extra_counts, out=extra_splits[1:])
        extra_rows = (
            src_splits[extra_seg]
            + dst_counts[extra_seg]
            + (np.arange(len(extra_ce), dtype=np.int64) - extra_splits[extra_seg])
        )
        src_ids[extra_rows] = extra_ce - extra_seg * num_nodes
    # edge endpoints: look each (seg, id) up in the merged source rows
    src_seg = np.repeat(np.arange(num_segments, dtype=np.int64), src_counts)
    lookup_ce = src_seg * num_nodes + src_ids
    sorter = np.argsort(lookup_ce, kind="stable")
    edge_src = sorter[np.searchsorted(lookup_ce, edge_ce, sorter=sorter)]
    return Block(
        src_ids=src_ids,
        num_dst=len(frontier),
        edge_src=edge_src,
        edge_dst=dst_pos,
        src_splits=src_splits,
        dst_splits=splits,
    )


def estimate_request_costs(
    graph, node_ids: np.ndarray, fanouts: Sequence[int] | None = None
) -> np.ndarray:
    """Per-request frontier-cost estimates for load balancing (RNG-free).

    Uniform without-replacement sampling keeps exactly ``min(deg, fanout)``
    neighbours per node, so the *size* of a request's hop-1 frontier is a
    deterministic function of its seed's in-degree even though the
    neighbour identities are random — one vectorised
    :meth:`~repro.graph.csr.GraphView.in_degree` lookup gives it exactly.
    Deeper hops expand geometrically and are estimated with saturated
    fanouts (each hop-1 neighbour contributes a full ``fanout`` at every
    deeper layer) — an upper-bound-shaped proxy that preserves the
    ordering LPT bin-packing needs.

    This probe is a **balancing signal only**: it never touches an RNG
    stream (the serving ``derive_rng(seed, "serve", node)`` generators
    are consumed solely inside the samplers) and never influences what
    any request computes — only *where* it runs.  Costs are ``>= 1`` so
    zero-degree seeds still carry their forward cost.
    """
    node_ids = np.asarray(node_ids, dtype=np.int64)
    if len(node_ids) == 0:
        return np.zeros(0, dtype=np.float64)
    deg = np.asarray(graph.in_degree(node_ids), dtype=np.float64)
    fanouts = [int(f) for f in fanouts] if fanouts else []
    if not fanouts:
        return 1.0 + deg
    # fanouts[0] caps the hop nearest the seeds (sampler walk order)
    hop1 = np.minimum(deg, float(fanouts[0]))
    deeper = 0.0
    scale = 1.0
    for f in fanouts[1:]:
        scale *= float(f)
        deeper += scale
    return 1.0 + hop1 * (1.0 + deeper)
