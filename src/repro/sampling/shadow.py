"""ShaDow-GNN sampler (paper Sec. II-B, Zeng et al. 2021).

ShaDow decouples model depth from receptive-field scope: it first builds a
localised sampled ``L'``-hop subgraph around each seed batch (paper
fanouts ``[10, 5]``), then runs *all* ``L`` GNN layers on that fixed
subgraph.  This bounds the neighbourhood (no neighbour explosion) at the
cost of a more expensive, less parallel sampling stage — which is exactly
why the paper sees its biggest ARGO speedups on ShaDow (Sec. VI-E).

We represent the result as ``L`` identical blocks over the subgraph node
set with the seeds first, so the same model forward used for neighbour
sampling applies unchanged and the output rows for the seeds are simply
the destination prefix of the last block.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.base import Sampler, register_sampler
from repro.sampling.block import Block, MiniBatch
from repro.sampling.neighbor import sample_neighbors_uniform
from repro.utils.rng import as_generator

__all__ = ["ShadowSampler"]


@register_sampler("shadow")
class ShadowSampler(Sampler):
    """Localised-subgraph sampler.

    Parameters
    ----------
    fanouts:
        Per-hop sample sizes for growing the localised subgraph
        (paper default ``[10, 5]`` — a 2-hop scope).
    num_layers:
        Depth of the GNN that will run on the subgraph (paper: 3).  The
        sampler emits this many (identical) blocks.
    """

    def __init__(self, fanouts: list[int] | tuple[int, ...] = (10, 5), num_layers: int = 3):
        fanouts = [int(f) for f in fanouts]
        if not fanouts or any(f < 1 for f in fanouts):
            raise ValueError(f"fanouts must be positive ints, got {fanouts}")
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.fanouts = fanouts
        self.num_layers = int(num_layers)

    def sample(self, graph: CSRGraph, seeds: np.ndarray, *, rng=None) -> MiniBatch:
        rng = as_generator(rng)
        seeds = np.asarray(seeds, dtype=np.int64)
        if len(seeds) == 0:
            raise ValueError("cannot sample an empty seed batch")
        if len(np.unique(seeds)) != len(seeds):
            raise ValueError("seed nodes must be unique within a batch")

        # Grow the node set hop by hop (seeds stay first).
        node_set = seeds
        frontier = seeds
        for fanout in self.fanouts:
            src_global, _ = sample_neighbors_uniform(graph, frontier, fanout, rng)
            new = np.setdiff1d(np.unique(src_global), node_set, assume_unique=False)
            if len(new) == 0:
                break
            node_set = np.concatenate([node_set, new])
            frontier = new

        # Induce the subgraph on the collected node set, preserving order
        # (seeds first) so that local ids 0..len(seeds)-1 are the seeds.
        sub, _ = graph.subgraph(node_set)
        sub_src, sub_dst = sub.to_edge_index()

        # Intermediate layers aggregate over the whole subgraph; the last
        # layer narrows its destinations to the seed prefix so the training
        # loop reads exactly len(seeds) output rows.
        full = Block(
            src_ids=node_set,
            num_dst=len(node_set),
            edge_src=sub_src,
            edge_dst=sub_dst,
        )
        seed_mask = sub_dst < len(seeds)
        last = Block(
            src_ids=node_set,
            num_dst=len(seeds),
            edge_src=sub_src[seed_mask],
            edge_dst=sub_dst[seed_mask],
        )
        blocks = [full] * (self.num_layers - 1) + [last]
        return MiniBatch(seeds=seeds, blocks=blocks)
