"""ShaDow-GNN sampler (paper Sec. II-B, Zeng et al. 2021).

ShaDow decouples model depth from receptive-field scope: it first builds a
localised sampled ``L'``-hop subgraph around each seed batch (paper
fanouts ``[10, 5]``), then runs *all* ``L`` GNN layers on that fixed
subgraph.  This bounds the neighbourhood (no neighbour explosion) at the
cost of a more expensive, less parallel sampling stage — which is exactly
why the paper sees its biggest ARGO speedups on ShaDow (Sec. VI-E).

We represent the result as ``L`` identical blocks over the subgraph node
set with the seeds first, so the same model forward used for neighbour
sampling applies unchanged and the output rows for the seeds are simply
the destination prefix of the last block.

The fused multi-request path (:meth:`ShadowSampler.sample_merged`) grows
every request's node set in the same hop loop — per-segment key draws
from each request's own generator, in the looped path's exact draw order
(see :mod:`repro.sampling.neighbor`'s RNG draw-order contract) — and
induces all subgraphs with one gather over the concatenated node sets.
A request whose hop discovers no new nodes simply drops out of the
shared frontier, exactly as the looped path's early ``break`` stops its
draws.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.graph.csr import GraphView
from repro.sampling.base import Sampler, register_sampler
from repro.sampling.batch import (
    MergedFrontier,
    check_seed_batches,
    draw_segment_keys,
    select_by_keys,
)
from repro.sampling.block import Block, MiniBatch
from repro.sampling.neighbor import sample_neighbors_uniform
from repro.utils.rng import as_generator

__all__ = ["ShadowSampler"]


@register_sampler("shadow")
class ShadowSampler(Sampler):
    """Localised-subgraph sampler.

    Parameters
    ----------
    fanouts:
        Per-hop sample sizes for growing the localised subgraph
        (paper default ``[10, 5]`` — a 2-hop scope).
    num_layers:
        Depth of the GNN that will run on the subgraph (paper: 3).  The
        sampler emits this many (identical) blocks.
    """

    def __init__(self, fanouts: list[int] | tuple[int, ...] = (10, 5), num_layers: int = 3):
        fanouts = [int(f) for f in fanouts]
        if not fanouts or any(f < 1 for f in fanouts):
            raise ValueError(f"fanouts must be positive ints, got {fanouts}")
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.fanouts = fanouts
        self.num_layers = int(num_layers)

    def sample(self, graph: GraphView, seeds: np.ndarray, *, rng=None) -> MiniBatch:
        rng = as_generator(rng)
        seeds = np.asarray(seeds, dtype=np.int64)
        if len(seeds) == 0:
            raise ValueError("cannot sample an empty seed batch")
        if len(np.unique(seeds)) != len(seeds):
            raise ValueError("seed nodes must be unique within a batch")

        # Grow the node set hop by hop (seeds stay first).
        node_set = seeds
        frontier = seeds
        for fanout in self.fanouts:
            src_global, _ = sample_neighbors_uniform(graph, frontier, fanout, rng)
            new = np.setdiff1d(np.unique(src_global), node_set, assume_unique=False)
            if len(new) == 0:
                break
            node_set = np.concatenate([node_set, new])
            frontier = new

        # Induce the subgraph on the collected node set, preserving order
        # (seeds first) so that local ids 0..len(seeds)-1 are the seeds.
        sub, _ = graph.subgraph(node_set)
        sub_src, sub_dst = sub.to_edge_index()

        # Intermediate layers aggregate over the whole subgraph; the last
        # layer narrows its destinations to the seed prefix so the training
        # loop reads exactly len(seeds) output rows.
        full = Block(
            src_ids=node_set,
            num_dst=len(node_set),
            edge_src=sub_src,
            edge_dst=sub_dst,
        )
        seed_mask = sub_dst < len(seeds)
        last = Block(
            src_ids=node_set,
            num_dst=len(seeds),
            edge_src=sub_src[seed_mask],
            edge_dst=sub_dst[seed_mask],
        )
        blocks = [full] * (self.num_layers - 1) + [last]
        return MiniBatch(seeds=seeds, blocks=blocks)

    def sample_merged(
        self,
        graph: GraphView,
        seed_batches: Sequence[np.ndarray],
        rngs: Sequence[np.random.Generator],
        *,
        phases=None,
    ) -> MergedFrontier:
        """Fused multi-request subgraph growth + one-pass union induction.

        Bit-identical to merging looped :meth:`sample` calls: node sets
        are tracked as composite keys ``seg * num_nodes + id`` so one
        sorted-array membership test is an independent per-segment
        ``setdiff1d``, and the final induction is one
        :meth:`~repro.graph.csr.CSRGraph.gather_neighbors` over the
        concatenated (seeds-first, hop-ordered) node sets with a
        composite-key member lookup replacing the per-request
        ``subgraph`` relabel.
        """
        if type(self).sample is not ShadowSampler.sample:
            # a subclass customised the per-request path; the fused
            # kernel cannot promise bit-identity to it — loop instead
            return super().sample_merged(graph, seed_batches, rngs, phases=phases)
        seed_batches = check_seed_batches(seed_batches, rngs)
        num_segments = len(seed_batches)
        num_nodes = graph.num_nodes
        seed_counts = np.array([len(s) for s in seed_batches], dtype=np.int64)
        seed_splits = np.zeros(num_segments + 1, dtype=np.int64)
        np.cumsum(seed_counts, out=seed_splits[1:])
        start = time.perf_counter()

        # grow every segment's node set in lockstep (its own hop order:
        # seeds, then each hop's new nodes in ascending id order)
        part_ids = [np.concatenate(seed_batches)]
        part_segs = [
            np.repeat(np.arange(num_segments, dtype=np.int64), seed_counts)
        ]
        member_ce = np.sort(part_segs[0] * num_nodes + part_ids[0])
        frontier_ids = part_ids[0]
        frontier_segs = part_segs[0]
        for fanout in self.fanouts:
            srcs, offsets = graph.gather_neighbors(frontier_ids)
            f_counts = np.bincount(frontier_segs, minlength=num_segments)
            f_splits = np.zeros(num_segments + 1, dtype=np.int64)
            np.cumsum(f_counts, out=f_splits[1:])
            seg_counts = offsets[f_splits[1:]] - offsets[f_splits[:-1]]
            keys = draw_segment_keys(rngs, seg_counts)
            src_global, dst_pos = select_by_keys(srcs, offsets, fanout, keys)
            # per-segment unique of the sampled sources, minus members
            ce = np.unique(frontier_segs[dst_pos] * num_nodes + src_global)
            pos = np.searchsorted(member_ce, ce)
            found = pos < len(member_ce)
            found[found] = member_ce[pos[found]] == ce[found]
            new_ce = ce[~found]
            if len(new_ce) == 0:
                break  # no segment found anything new; all rngs go quiet
            member_ce = np.sort(np.concatenate([member_ce, new_ce]))
            frontier_segs = new_ce // num_nodes
            frontier_ids = new_ce - frontier_segs * num_nodes
            part_ids.append(frontier_ids)
            part_segs.append(frontier_segs)

        # per-segment node order: seeds first, then hop chunks — the
        # stable sort by segment preserves exactly that discovery order
        all_ids = np.concatenate(part_ids)
        all_segs = np.concatenate(part_segs)
        order = np.argsort(all_segs, kind="stable")
        node_ids = all_ids[order]
        node_segs = all_segs[order]
        node_counts = np.bincount(all_segs, minlength=num_segments)
        node_splits = np.zeros(num_segments + 1, dtype=np.int64)
        np.cumsum(node_counts, out=node_splits[1:])
        mid = time.perf_counter()

        # induce every segment's subgraph with one gather: keep edges
        # whose source is a member of the destination's own segment
        srcs, offsets = graph.gather_neighbors(node_ids)
        dst_idx = np.repeat(
            np.arange(len(node_ids), dtype=np.int64), np.diff(offsets)
        )
        edge_ce = node_segs[dst_idx] * num_nodes + srcs
        node_ce = node_segs * num_nodes + node_ids
        sorter = np.argsort(node_ce, kind="stable")
        node_ce_sorted = node_ce[sorter]
        pos = np.searchsorted(node_ce_sorted, edge_ce)
        found = pos < len(node_ce_sorted)
        found[found] = node_ce_sorted[pos[found]] == edge_ce[found]
        edge_src = sorter[pos[found]]  # merged source-row positions
        edge_dst = dst_idx[found]
        full = Block(
            src_ids=node_ids,
            num_dst=len(node_ids),
            edge_src=edge_src,
            edge_dst=edge_dst,
            src_splits=node_splits,
            dst_splits=node_splits,
        )
        # last layer: narrow destinations to each segment's seed prefix
        dst_seg = node_segs[edge_dst]
        dst_local = edge_dst - node_splits[dst_seg]
        keep = dst_local < seed_counts[dst_seg]
        last = Block(
            src_ids=node_ids,
            num_dst=int(seed_splits[-1]),
            edge_src=edge_src[keep],
            edge_dst=seed_splits[dst_seg[keep]] + dst_local[keep],
            src_splits=node_splits,
            dst_splits=seed_splits,
        )
        if phases is not None:
            phases.sample_s += mid - start
            phases.merge_s += time.perf_counter() - mid
        return MergedFrontier(
            blocks=[full] * (self.num_layers - 1) + [last],
            seeds=part_ids[0],
            request_rows=seed_splits,
        )