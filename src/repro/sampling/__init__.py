"""Mini-batch samplers and the node data loader.

Implements the two sampling algorithms evaluated by the paper:

* :class:`NeighborSampler` — layered neighbour sampling with per-layer
  fanouts (paper default ``[15, 10, 5]`` for a 3-layer model);
* :class:`ShadowSampler` — ShaDow-GNN style: build a localised
  ``L'``-hop sampled subgraph around the seeds (paper default fanouts
  ``[10, 5]``) and run *all* GNN layers on that subgraph.

Both produce a :class:`MiniBatch` of bipartite :class:`Block` structures
following the DGL convention that destination nodes are a prefix of the
source nodes, which lets GraphSAGE read ``h_v^{l-1}`` directly.
"""

from repro.sampling.block import Block, MiniBatch
from repro.sampling.neighbor import NeighborSampler
from repro.sampling.shadow import ShadowSampler
from repro.sampling.saint import SaintRWSampler
from repro.sampling.cluster import ClusterSampler
from repro.sampling.dataloader import NodeDataLoader
from repro.sampling.base import Sampler, make_sampler, SAMPLER_REGISTRY

__all__ = [
    "Block",
    "MiniBatch",
    "NeighborSampler",
    "ShadowSampler",
    "SaintRWSampler",
    "ClusterSampler",
    "NodeDataLoader",
    "Sampler",
    "make_sampler",
    "SAMPLER_REGISTRY",
]
