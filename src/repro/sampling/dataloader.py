"""Node data loader: shuffling, batching, sampling, feature slicing.

Equivalent of ``dgl.dataloading.DataLoader``: iterates the training node
set in shuffled mini-batches, invokes the sampler on each batch and
attaches labels.  The ``num_workers`` argument mirrors the knob ARGO's
auto-tuner controls (Listing 3's ``num_workers=num_of_samplers``): here it
is carried as metadata consumed by the platform cost model — the numerics
are identical regardless of worker count, as in the paper (core binding
changes speed, never semantics).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.base import Sampler
from repro.sampling.block import MiniBatch
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["NodeDataLoader"]


class NodeDataLoader:
    """Iterable over sampled mini-batches of a node set.

    Parameters
    ----------
    graph, nodes, labels:
        The full graph, the node ids to iterate (e.g. the train split) and
        the full label vector (indexed by global id).
    sampler:
        Any :class:`repro.sampling.base.Sampler`.
    batch_size:
        Seeds per iteration.  The Multi-Process Engine passes ``b/n`` here.
    shuffle:
        Reshuffle the node order every epoch (seeded, per-epoch stream).
    drop_last:
        Drop a trailing partial batch (keeps per-iteration workload
        comparable across ranks; DDP requires equal step counts).
    num_workers:
        Number of sampling cores this loader is *bound to* — metadata for
        the performance model, does not change results.
    seed:
        Base seed; epoch ``e`` uses an independent derived stream.
    """

    def __init__(
        self,
        graph: CSRGraph,
        nodes: np.ndarray,
        labels: np.ndarray,
        sampler: Sampler,
        *,
        batch_size: int,
        shuffle: bool = True,
        drop_last: bool = False,
        num_workers: int = 1,
        seed: int | None = 0,
    ):
        self.graph = graph
        self.nodes = np.asarray(nodes, dtype=np.int64)
        if len(self.nodes) == 0:
            raise ValueError("NodeDataLoader needs a non-empty node set")
        self.labels = np.asarray(labels, dtype=np.int64)
        self.sampler = sampler
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.num_workers = check_positive_int(num_workers, "num_workers")
        self.seed = seed
        self._epoch = 0

    def set_epoch(self, epoch: int) -> None:
        """Choose the shuffle/sampling stream (DDP-style epoch seeding)."""
        self._epoch = int(epoch)

    def __len__(self) -> int:
        n = len(self.nodes)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[MiniBatch]:
        rng = as_generator(None if self.seed is None else (self.seed, self._epoch))
        order = rng.permutation(self.nodes) if self.shuffle else self.nodes
        n_batches = len(self)
        for i in range(n_batches):
            seeds = order[i * self.batch_size : (i + 1) * self.batch_size]
            batch = self.sampler.sample(self.graph, seeds, rng=rng)
            batch.labels = self.labels[batch.seeds]
            yield batch
