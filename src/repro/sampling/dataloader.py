"""Node data loader: shuffling, batching, sampling, feature slicing.

Equivalent of ``dgl.dataloading.DataLoader``: iterates the training node
set in shuffled mini-batches, invokes the sampler on each batch and
attaches labels.  The ``num_workers`` argument mirrors the knob ARGO's
auto-tuner controls (Listing 3's ``num_workers=num_of_samplers``): here it
is carried as metadata consumed by the platform cost model — the numerics
are identical regardless of worker count, as in the paper (core binding
changes speed, never semantics).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.base import Sampler
from repro.sampling.block import MiniBatch
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["NodeDataLoader"]


class NodeDataLoader:
    """Iterable over sampled mini-batches of a node set.

    Parameters
    ----------
    graph, nodes, labels:
        The full graph, the node ids to iterate (e.g. the train split) and
        the full label vector (indexed by global id).
    sampler:
        Any :class:`repro.sampling.base.Sampler`.
    batch_size:
        Seeds per iteration.  The Multi-Process Engine passes ``b/n`` here.
    shuffle:
        Reshuffle the node order every epoch (seeded, per-epoch stream).
    drop_last:
        Drop a trailing partial batch (keeps per-iteration workload
        comparable across ranks; DDP requires equal step counts).
    num_workers:
        Number of sampling cores this loader is *bound to* — metadata for
        the performance model, does not change results.
    seed:
        Base seed; epoch ``e`` uses an independent derived stream.
    rank, world_size:
        DDP-style sharding: the loader iterates only rank ``rank``'s
        strided share of the (epoch-shuffled) node order.  The shuffle
        uses a *world-shared* stream and the per-batch sampling RNG is
        derived purely from ``(seed, epoch, rank)`` — never from thread
        or process identity — so every execution backend (inline, thread,
        process) sees bit-identical per-rank sample streams.
    """

    def __init__(
        self,
        graph: CSRGraph,
        nodes: np.ndarray,
        labels: np.ndarray,
        sampler: Sampler,
        *,
        batch_size: int,
        shuffle: bool = True,
        drop_last: bool = False,
        num_workers: int = 1,
        seed: int | None = 0,
        rank: int = 0,
        world_size: int = 1,
    ):
        self.graph = graph
        self.nodes = np.asarray(nodes, dtype=np.int64)
        if len(self.nodes) == 0:
            raise ValueError("NodeDataLoader needs a non-empty node set")
        self.labels = np.asarray(labels, dtype=np.int64)
        self.sampler = sampler
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.num_workers = check_positive_int(num_workers, "num_workers")
        self.seed = seed
        self.world_size = check_positive_int(world_size, "world_size")
        if not 0 <= int(rank) < self.world_size:
            raise ValueError(f"rank {rank} out of range for world size {world_size}")
        self.rank = int(rank)
        if self.world_size > 1 and len(self.nodes) < self.world_size:
            raise ValueError(
                f"cannot shard {len(self.nodes)} nodes over {world_size} ranks"
            )
        if self.world_size > 1 and seed is None:
            # without a seed every rank would draw its own entropy for the
            # "world-shared" shuffle, so the strided shards would overlap
            # and skip nodes instead of partitioning them
            raise ValueError("sharded loading (world_size > 1) requires a seed")
        self._epoch = 0

    def set_epoch(self, epoch: int) -> None:
        """Choose the shuffle/sampling stream (DDP-style epoch seeding)."""
        self._epoch = int(epoch)

    def _shard_size(self) -> int:
        """Nodes this rank iterates (strided split of the global order)."""
        n, w, r = len(self.nodes), self.world_size, self.rank
        return n // w + (1 if r < n % w else 0)

    def __len__(self) -> int:
        n = self._shard_size()
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[MiniBatch]:
        # world-shared shuffle stream: every rank derives the identical
        # global order, then takes its strided slice
        shuffle_rng = as_generator(None if self.seed is None else (self.seed, self._epoch))
        order = shuffle_rng.permutation(self.nodes) if self.shuffle else self.nodes
        if self.world_size > 1:
            order = order[self.rank :: self.world_size]
            # per-rank sampling stream, a pure function of (seed, epoch,
            # rank) — identical no matter which backend runs this rank
            sample_rng = as_generator(
                None if self.seed is None else (self.seed, self._epoch, self.rank)
            )
        else:
            sample_rng = shuffle_rng  # preserve the historical stream
        n_batches = len(self)
        for i in range(n_batches):
            seeds = order[i * self.batch_size : (i + 1) * self.batch_size]
            batch = self.sampler.sample(self.graph, seeds, rng=sample_rng)
            batch.labels = self.labels[batch.seeds]
            yield batch
