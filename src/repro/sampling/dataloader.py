"""Node data loader: shuffling, batching, sampling, feature slicing.

Equivalent of ``dgl.dataloading.DataLoader``: iterates the training node
set in shuffled mini-batches, invokes the sampler on each batch and
attaches labels.  The ``num_workers`` argument mirrors the knob ARGO's
auto-tuner controls (Listing 3's ``num_workers=num_of_samplers``); wrap
the loader in :class:`repro.pipeline.PrefetchingLoader` to actually run
that many sampler workers overlapped with computation — the numerics are
identical either way because every batch's sampling RNG is a pure
function of ``(seed, epoch, rank, step)``, never of which worker ran it
(core binding changes speed, never semantics).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graph.csr import CSRGraph
from repro.sampling.base import Sampler
from repro.sampling.batch import split_merged
from repro.sampling.block import MiniBatch
from repro.utils.rng import as_generator, derive_rng
from repro.utils.validation import check_positive_int

__all__ = ["NodeDataLoader"]


class NodeDataLoader:
    """Iterable over sampled mini-batches of a node set.

    Parameters
    ----------
    graph, nodes, labels:
        The full graph, the node ids to iterate (e.g. the train split) and
        the full label vector (indexed by global id).
    sampler:
        Any :class:`repro.sampling.base.Sampler`.
    batch_size:
        Seeds per iteration.  The Multi-Process Engine passes ``b/n`` here.
    shuffle:
        Reshuffle the node order every epoch (seeded, per-epoch stream).
    drop_last:
        Drop a trailing partial batch (keeps per-iteration workload
        comparable across ranks; DDP requires equal step counts).
    num_workers:
        Number of sampling workers this loader is meant to run under —
        consumed by the performance model and by
        :class:`repro.pipeline.PrefetchingLoader`; does not change
        results.
    seed:
        Base seed; epoch ``e`` uses an independent derived stream.
    rank, world_size:
        DDP-style sharding: the loader iterates only rank ``rank``'s
        strided share of the (epoch-shuffled) node order.  The shuffle
        uses a *world-shared* stream and each batch's sampling RNG is
        derived purely from ``(seed, epoch, rank, step)`` — never from
        thread or process identity — so every execution backend (inline,
        thread, process) and every prefetch setting sees bit-identical
        per-rank sample streams.

    Equal step counts across ranks
    ------------------------------
    With ``world_size > 1`` the strided shards can differ in size by one
    node, which would give ranks *unequal* batch counts — a collective
    (gradient all-reduce) issued per batch would then deadlock, some
    ranks having exited the loop.  The loader therefore normalises every
    rank to the common step count:

    * ``drop_last=False`` — short ranks **pad** with one extra batch that
      wraps around to the start of their own shard (the
      ``DistributedSampler`` convention: a few duplicate seeds, never a
      missing collective);
    * ``drop_last=True`` — long ranks **trim** to the shortest rank's
      full-batch count (consistent with drop-last semantics).

    ``len(loader)`` always reports this common count, identical on every
    rank.
    """

    def __init__(
        self,
        graph: CSRGraph,
        nodes: np.ndarray,
        labels: np.ndarray,
        sampler: Sampler,
        *,
        batch_size: int,
        shuffle: bool = True,
        drop_last: bool = False,
        num_workers: int = 1,
        seed: int | None = 0,
        rank: int = 0,
        world_size: int = 1,
    ):
        self.graph = graph
        self.nodes = np.asarray(nodes, dtype=np.int64)
        if len(self.nodes) == 0:
            raise ValueError("NodeDataLoader needs a non-empty node set")
        self.labels = np.asarray(labels, dtype=np.int64)
        self.sampler = sampler
        self.batch_size = check_positive_int(batch_size, "batch_size")
        self.shuffle = bool(shuffle)
        self.drop_last = bool(drop_last)
        self.num_workers = check_positive_int(num_workers, "num_workers")
        self.seed = seed
        self.world_size = check_positive_int(world_size, "world_size")
        if not 0 <= int(rank) < self.world_size:
            raise ValueError(f"rank {rank} out of range for world size {world_size}")
        self.rank = int(rank)
        if self.world_size > 1 and len(self.nodes) < self.world_size:
            raise ValueError(
                f"cannot shard {len(self.nodes)} nodes over {world_size} ranks"
            )
        if self.world_size > 1 and seed is None:
            # without a seed every rank would draw its own entropy for the
            # "world-shared" shuffle, so the strided shards would overlap
            # and skip nodes instead of partitioning them
            raise ValueError("sharded loading (world_size > 1) requires a seed")
        self._epoch = 0

    def set_epoch(self, epoch: int) -> None:
        """Choose the shuffle/sampling stream (DDP-style epoch seeding)."""
        self._epoch = int(epoch)

    @property
    def epoch(self) -> int:
        return self._epoch

    def _shard_size(self, rank: int | None = None) -> int:
        """Nodes a rank iterates (strided split of the global order)."""
        n, w = len(self.nodes), self.world_size
        r = self.rank if rank is None else rank
        return n // w + (1 if r < n % w else 0)

    def _rank_steps(self, rank: int) -> int:
        """Raw (un-normalised) batch count of one rank's shard."""
        n = self._shard_size(rank)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __len__(self) -> int:
        """Common per-rank step count (identical on every rank)."""
        counts = [self._rank_steps(r) for r in range(self.world_size)]
        return min(counts) if self.drop_last else max(counts)

    # ------------------------------------------------------------------
    # per-batch decomposition (consumed by the prefetching pipeline)
    # ------------------------------------------------------------------
    def batch_seeds(self) -> list[np.ndarray]:
        """This epoch's per-batch seed arrays, normalised to ``len(self)``.

        Pure function of ``(seed, epoch, rank)``; step ``i`` of the
        returned list is exactly the seed set :meth:`__iter__` samples at
        step ``i``.
        """
        shuffle_rng = as_generator(
            None if self.seed is None else (self.seed, self._epoch)
        )
        order = shuffle_rng.permutation(self.nodes) if self.shuffle else self.nodes
        if self.world_size > 1:
            order = order[self.rank :: self.world_size]
        n_batches = len(self)
        b = self.batch_size
        batches = [order[i * b : (i + 1) * b] for i in range(n_batches)]
        # pad a short shard's missing trailing batches by wrapping around
        # to the start of its own shard (drop_last=False only; with
        # drop_last=True, len() already trimmed to full batches)
        for i, seeds in enumerate(batches):
            if len(seeds) == 0:
                batches[i] = order[: min(b, len(order))]
        return batches

    def sample_batch(self, step: int, seeds: np.ndarray) -> MiniBatch:
        """Sample batch ``step`` of the current epoch (labels attached).

        The RNG is derived from ``(seed, epoch, rank, step)`` alone, so
        batches may be sampled concurrently and out of order — by any
        worker — and still reproduce the sequential stream.
        """
        rng = (
            as_generator(None)
            if self.seed is None
            else derive_rng(self.seed, "batch", self._epoch, self.rank, step)
        )
        batch = self.sampler.sample(self.graph, seeds, rng=rng)
        batch.labels = self.labels[batch.seeds]
        return batch

    def sample_batch_span(
        self, start_step: int, seeds_list: list[np.ndarray]
    ) -> list[MiniBatch]:
        """Sample consecutive batches ``start_step .. start_step+k-1`` fused.

        One :meth:`~repro.sampling.base.Sampler.sample_merged` call draws
        every batch in the span (each from its own
        ``(seed, epoch, rank, step)`` stream, exactly as
        :meth:`sample_batch` would) and
        :func:`~repro.sampling.batch.split_merged` recovers the ordinary
        per-step MiniBatches — bit-identical to ``k`` separate
        :meth:`sample_batch` calls, labels attached, but the sampling
        kernels run once over the span's concatenated frontiers.
        """
        rngs = [
            as_generator(None)
            if self.seed is None
            else derive_rng(self.seed, "batch", self._epoch, self.rank, start_step + i)
            for i in range(len(seeds_list))
        ]
        merged = self.sampler.sample_merged(self.graph, seeds_list, rngs)
        batches = split_merged(merged)
        for batch in batches:
            batch.labels = self.labels[batch.seeds]
        return batches

    def __iter__(self) -> Iterator[MiniBatch]:
        for step, seeds in enumerate(self.batch_seeds()):
            yield self.sample_batch(step, seeds)
