"""Bipartite message-flow blocks (DGL's ``MFG``/``block`` equivalent).

A :class:`Block` connects a set of *source* nodes (holding layer ``l-1``
features) to a set of *destination* nodes (receiving layer ``l`` features)
with local-index edges.  The invariant ``dst_ids == src_ids[:num_dst]``
(destination prefix) lets layers access the previous representation of
each destination node as ``h_src[:num_dst]`` — required by GraphSAGE's
``h_v || mean(h_u)`` update.

:class:`MiniBatch` bundles the ``L`` blocks of one training iteration plus
the bookkeeping the workload profiler (Fig. 5/6) needs: total sampled
edges and nodes.

Merged (shared-frontier) blocks
-------------------------------
The serving runtime's frontier merger
(:func:`repro.serve.frontier.merge_frontiers`) concatenates several
independently-sampled blocks into one block-diagonal union.  In that
layout the destination nodes are *not* a prefix of ``src_ids`` — each
request keeps its own prefix inside its segment — so a merged block
carries ``src_splits``/``dst_splits`` (the per-request segment offsets
into the source and destination rows).  :attr:`Block.dst_positions`
abstracts the difference: the position of each destination row within
the source rows, ``arange(num_dst)`` for ordinary prefix blocks.  GNN
layers index through it (and pass the splits to the segmented matmul),
which is what lets one model forward serve both layouts bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Block", "MiniBatch"]


@dataclass
class Block:
    """One bipartite sampling layer.

    Attributes
    ----------
    src_ids:
        Global node ids of source nodes; the first ``num_dst`` entries are
        the destination nodes (prefix convention), unless this is a merged
        block (``src_splits`` set), where each request segment holds its
        own destination prefix instead.
    num_dst:
        Number of destination nodes.
    edge_src, edge_dst:
        Local edge endpoints: ``edge_src[e]`` indexes ``src_ids``;
        ``edge_dst[e]`` indexes the destination numbering (the prefix for
        ordinary blocks, the concatenated per-request prefixes for merged
        ones).
    src_splits, dst_splits:
        Merged blocks only: per-request segment offsets into the source
        rows and the destination rows (both ``len == requests + 1``,
        starting at 0 and ending at ``num_src``/``num_dst``).  ``None``
        for ordinary single-request blocks.
    """

    src_ids: np.ndarray
    num_dst: int
    edge_src: np.ndarray
    edge_dst: np.ndarray
    src_splits: np.ndarray | None = None
    dst_splits: np.ndarray | None = None

    def __post_init__(self):
        self.src_ids = np.asarray(self.src_ids, dtype=np.int64)
        self.edge_src = np.asarray(self.edge_src, dtype=np.int64)
        self.edge_dst = np.asarray(self.edge_dst, dtype=np.int64)
        if self.num_dst < 0 or self.num_dst > len(self.src_ids):
            raise ValueError(
                f"num_dst={self.num_dst} out of range for {len(self.src_ids)} src nodes"
            )
        if self.edge_src.shape != self.edge_dst.shape:
            raise ValueError("edge_src/edge_dst length mismatch")
        if len(self.edge_src):
            if self.edge_src.min() < 0 or self.edge_src.max() >= self.num_src:
                raise ValueError("edge_src out of range")
            if self.edge_dst.min() < 0 or self.edge_dst.max() >= self.num_dst:
                raise ValueError("edge_dst out of range")
        if (self.src_splits is None) != (self.dst_splits is None):
            raise ValueError("src_splits and dst_splits must be set together")
        if self.src_splits is not None:
            self.src_splits = np.asarray(self.src_splits, dtype=np.int64)
            self.dst_splits = np.asarray(self.dst_splits, dtype=np.int64)
            for name, splits, total in (
                ("src_splits", self.src_splits, self.num_src),
                ("dst_splits", self.dst_splits, self.num_dst),
            ):
                if (
                    splits.ndim != 1
                    or len(splits) < 2
                    or splits[0] != 0
                    or splits[-1] != total
                    or np.any(np.diff(splits) < 0)
                ):
                    raise ValueError(f"{name} is not a monotone 0..{total} offset array")
            if len(self.src_splits) != len(self.dst_splits):
                raise ValueError("src_splits/dst_splits segment-count mismatch")
            seg_dst = np.diff(self.dst_splits)
            if np.any(seg_dst > np.diff(self.src_splits)):
                raise ValueError("a segment has more destinations than sources")

    @property
    def num_src(self) -> int:
        return len(self.src_ids)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)

    @property
    def num_segments(self) -> int:
        """Merged request segments (1 for an ordinary prefix block)."""
        return 1 if self.src_splits is None else len(self.src_splits) - 1

    @property
    def dst_positions(self) -> np.ndarray:
        """Position of each destination row within the source rows.

        ``arange(num_dst)`` under the prefix convention; for merged
        blocks, each request's destination rows sit at the head of its
        own source segment.  GNN layers read destination features as
        ``h_src[dst_positions]`` so the same forward covers both layouts.
        """
        if self.src_splits is None:
            return np.arange(self.num_dst, dtype=np.int64)
        return np.concatenate(
            [
                s + np.arange(d1 - d0, dtype=np.int64)
                for s, d0, d1 in zip(
                    self.src_splits[:-1], self.dst_splits[:-1], self.dst_splits[1:]
                )
            ]
        ) if self.num_dst else np.empty(0, dtype=np.int64)

    @property
    def dst_ids(self) -> np.ndarray:
        if self.src_splits is None:
            return self.src_ids[: self.num_dst]
        return self.src_ids[self.dst_positions]

    def validate_prefix(self) -> None:
        """Assert the destination-prefix convention (used by tests)."""
        if not np.array_equal(self.dst_ids, self.src_ids[: self.num_dst]):
            raise AssertionError("destination nodes are not a prefix of src_ids")


@dataclass
class MiniBatch:
    """All blocks for one iteration, innermost (input) layer first.

    ``blocks[0]`` consumes raw node features of ``input_ids``;
    ``blocks[-1]`` produces outputs for the ``seeds``.
    """

    seeds: np.ndarray
    blocks: list[Block]
    labels: np.ndarray | None = None

    def __post_init__(self):
        self.seeds = np.asarray(self.seeds, dtype=np.int64)
        if not self.blocks:
            raise ValueError("MiniBatch needs at least one block")
        if not np.array_equal(self.blocks[-1].dst_ids, self.seeds):
            raise ValueError("last block's destinations must equal the seeds")

    @property
    def input_ids(self) -> np.ndarray:
        """Global node ids whose raw features feed the first layer."""
        return self.blocks[0].src_ids

    @property
    def num_layers(self) -> int:
        return len(self.blocks)

    @property
    def total_edges(self) -> int:
        """Total aggregation workload of this batch (paper Fig. 6 metric)."""
        return sum(b.num_edges for b in self.blocks)

    @property
    def total_src_nodes(self) -> int:
        return sum(b.num_src for b in self.blocks)
