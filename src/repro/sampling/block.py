"""Bipartite message-flow blocks (DGL's ``MFG``/``block`` equivalent).

A :class:`Block` connects a set of *source* nodes (holding layer ``l-1``
features) to a set of *destination* nodes (receiving layer ``l`` features)
with local-index edges.  The invariant ``dst_ids == src_ids[:num_dst]``
(destination prefix) lets layers access the previous representation of
each destination node as ``h_src[:num_dst]`` — required by GraphSAGE's
``h_v || mean(h_u)`` update.

:class:`MiniBatch` bundles the ``L`` blocks of one training iteration plus
the bookkeeping the workload profiler (Fig. 5/6) needs: total sampled
edges and nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Block", "MiniBatch"]


@dataclass
class Block:
    """One bipartite sampling layer.

    Attributes
    ----------
    src_ids:
        Global node ids of source nodes; the first ``num_dst`` entries are
        the destination nodes (prefix convention).
    num_dst:
        Number of destination nodes.
    edge_src, edge_dst:
        Local edge endpoints: ``edge_src[e]`` indexes ``src_ids``;
        ``edge_dst[e]`` indexes the destination prefix.
    """

    src_ids: np.ndarray
    num_dst: int
    edge_src: np.ndarray
    edge_dst: np.ndarray

    def __post_init__(self):
        self.src_ids = np.asarray(self.src_ids, dtype=np.int64)
        self.edge_src = np.asarray(self.edge_src, dtype=np.int64)
        self.edge_dst = np.asarray(self.edge_dst, dtype=np.int64)
        if self.num_dst < 0 or self.num_dst > len(self.src_ids):
            raise ValueError(
                f"num_dst={self.num_dst} out of range for {len(self.src_ids)} src nodes"
            )
        if self.edge_src.shape != self.edge_dst.shape:
            raise ValueError("edge_src/edge_dst length mismatch")
        if len(self.edge_src):
            if self.edge_src.min() < 0 or self.edge_src.max() >= self.num_src:
                raise ValueError("edge_src out of range")
            if self.edge_dst.min() < 0 or self.edge_dst.max() >= self.num_dst:
                raise ValueError("edge_dst out of range")

    @property
    def num_src(self) -> int:
        return len(self.src_ids)

    @property
    def num_edges(self) -> int:
        return len(self.edge_src)

    @property
    def dst_ids(self) -> np.ndarray:
        return self.src_ids[: self.num_dst]

    def validate_prefix(self) -> None:
        """Assert the destination-prefix convention (used by tests)."""
        if not np.array_equal(self.dst_ids, self.src_ids[: self.num_dst]):
            raise AssertionError("destination nodes are not a prefix of src_ids")


@dataclass
class MiniBatch:
    """All blocks for one iteration, innermost (input) layer first.

    ``blocks[0]`` consumes raw node features of ``input_ids``;
    ``blocks[-1]`` produces outputs for the ``seeds``.
    """

    seeds: np.ndarray
    blocks: list[Block]
    labels: np.ndarray | None = None

    def __post_init__(self):
        self.seeds = np.asarray(self.seeds, dtype=np.int64)
        if not self.blocks:
            raise ValueError("MiniBatch needs at least one block")
        if not np.array_equal(self.blocks[-1].dst_ids, self.seeds):
            raise ValueError("last block's destinations must equal the seeds")

    @property
    def input_ids(self) -> np.ndarray:
        """Global node ids whose raw features feed the first layer."""
        return self.blocks[0].src_ids

    @property
    def num_layers(self) -> int:
        return len(self.blocks)

    @property
    def total_edges(self) -> int:
        """Total aggregation workload of this batch (paper Fig. 6 metric)."""
        return sum(b.num_edges for b in self.blocks)

    @property
    def total_src_nodes(self) -> int:
        return sum(b.num_src for b in self.blocks)
