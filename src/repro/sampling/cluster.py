"""Cluster-GCN style sampler (paper ref. [17], extension).

Cluster-GCN partitions the graph into clusters offline and trains on the
subgraph induced by one (or a few) clusters per iteration.  We reuse the
greedy-BFS partitioner from :mod:`repro.graph.partition` for the offline
clustering and emit ShaDow-style identical blocks over the selected
clusters' induced subgraph.

Unlike the seed-driven samplers, the mini-batch here is *defined by* the
cluster choice: ``sample`` interprets its ``seeds`` argument as the seed
nodes whose clusters should be materialised (DGL's ClusterGCN sampler has
the same contract), so the engine/data-loader machinery works unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.partition import greedy_bfs_partition
from repro.sampling.base import Sampler, register_sampler
from repro.sampling.block import Block, MiniBatch
from repro.utils.rng import as_generator, derive_rng

__all__ = ["ClusterSampler"]


@register_sampler("cluster")
class ClusterSampler(Sampler):
    """Partition-based subgraph sampler.

    Parameters
    ----------
    num_clusters:
        Offline partition count (Cluster-GCN uses hundreds at web scale;
        scale to your graph).
    num_layers:
        GNN depth run on the induced subgraph.
    seed:
        Seed for the one-time offline clustering.
    """

    def __init__(self, num_clusters: int = 32, num_layers: int = 3, *, seed: int = 0):
        if num_clusters < 1:
            raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
        if num_layers < 1:
            raise ValueError(f"num_layers must be >= 1, got {num_layers}")
        self.num_clusters = int(num_clusters)
        self.num_layers = int(num_layers)
        self.seed = int(seed)
        self._graph_id: int | None = None
        self._owner: np.ndarray | None = None

    def _ensure_clusters(self, graph: CSRGraph) -> np.ndarray:
        """Run (and cache) the offline clustering for this graph."""
        if self._graph_id == id(graph) and self._owner is not None:
            return self._owner
        k = min(self.num_clusters, graph.num_nodes)
        parts = greedy_bfs_partition(
            graph, np.arange(graph.num_nodes), k, rng=derive_rng(self.seed, "cluster")
        )
        owner = np.empty(graph.num_nodes, dtype=np.int64)
        for c, part in enumerate(parts):
            owner[part] = c
        self._graph_id = id(graph)
        self._owner = owner
        return owner

    def sample(self, graph: CSRGraph, seeds: np.ndarray, *, rng=None) -> MiniBatch:
        rng = as_generator(rng)
        seeds = np.asarray(seeds, dtype=np.int64)
        if len(seeds) == 0:
            raise ValueError("cannot sample an empty seed batch")
        if len(np.unique(seeds)) != len(seeds):
            raise ValueError("seed nodes must be unique within a batch")
        owner = self._ensure_clusters(graph)
        clusters = np.unique(owner[seeds])
        members = np.where(np.isin(owner, clusters))[0]
        extras = np.setdiff1d(members, seeds, assume_unique=False)
        node_set = np.concatenate([seeds, extras])  # seeds-first

        sub, _ = graph.subgraph(node_set)
        sub_src, sub_dst = sub.to_edge_index()
        full = Block(
            src_ids=node_set, num_dst=len(node_set), edge_src=sub_src, edge_dst=sub_dst
        )
        seed_mask = sub_dst < len(seeds)
        last = Block(
            src_ids=node_set,
            num_dst=len(seeds),
            edge_src=sub_src[seed_mask],
            edge_dst=sub_dst[seed_mask],
        )
        return MiniBatch(seeds=seeds, blocks=[full] * (self.num_layers - 1) + [last])
