"""Figure 1 — state-of-the-art GNN libraries suffer from poor scalability.

Paper shape: DGL and PyG training a 3-layer GraphSAGE on ogbn-products
stops speeding up past 16 cores (normalised speedup saturates well below
2x even at 128 cores).

``bench_fig1_backend_sweep`` complements the simulated figure with
*measured* wall-clock epoch times of the real Multi-Process Engine under
every execution backend (inline / thread / process) on a local synthetic
instance — the mechanism the simulated curves model.
"""

import numpy as np

from repro.experiments.figures import fig1_baseline_scalability, fig1_engine_backend_sweep
from repro.experiments.reporting import render_series, render_table


def bench_fig1(benchmark, save_result):
    data = benchmark.pedantic(
        lambda: fig1_baseline_scalability("ogbn-products", "icelake"),
        rounds=1,
        iterations=1,
    )
    text = render_series(
        data["cores"],
        data["speedup"],
        title="Fig 1 — baseline speedup vs cores (Neighbor-SAGE, ogbn-products, Ice Lake; normalised to 4 cores)",
    )
    save_result("fig01_baseline_scalability", text)

    # paper shape assertions: plateau past 16 cores for both libraries
    for lib, series in data["speedup"].items():
        idx16 = data["cores"].index(16)
        assert max(series[idx16:]) < 1.25 * series[idx16], lib
        assert series[idx16] > series[0], lib


def bench_fig1_backend_sweep(benchmark, save_result):
    """Real-engine wall clock per execution backend, same seed everywhere."""
    data = benchmark.pedantic(
        lambda: fig1_engine_backend_sweep(
            "ogbn-products", backends=("inline", "thread", "process"), epochs=1
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [b, f"{data['epoch_time'][b][0]:.3f}", f"{data['losses'][b][0]:.5f}"]
        for b in data["backends"]
    ]
    text = render_table(
        ["backend", "epoch time s", "mean loss"],
        rows,
        title="Fig 1 (measured) — engine wall clock per execution backend",
    )
    save_result("fig01_backend_sweep", text)

    # every backend ran and implements the same algorithm
    ref = data["losses"]["inline"]
    for b in data["backends"]:
        assert data["epoch_time"][b][0] > 0, b
        np.testing.assert_allclose(data["losses"][b], ref, rtol=1e-5)
