"""Figure 1 — state-of-the-art GNN libraries suffer from poor scalability.

Paper shape: DGL and PyG training a 3-layer GraphSAGE on ogbn-products
stops speeding up past 16 cores (normalised speedup saturates well below
2x even at 128 cores).

``bench_fig1_backend_sweep`` complements the simulated figure with
*measured* wall-clock epoch times of the real Multi-Process Engine under
every execution backend (inline / thread / process) on a local synthetic
instance — the mechanism the simulated curves model.
"""

import os

import numpy as np

from repro.experiments.figures import (
    fig1_baseline_scalability,
    fig1_engine_backend_sweep,
    fig1_overlap_sweep,
)
from repro.experiments.reporting import render_series, render_table
from repro.experiments.setups import ExperimentSetup, build_runtime


def bench_fig1(benchmark, save_result):
    data = benchmark.pedantic(
        lambda: fig1_baseline_scalability("ogbn-products", "icelake"),
        rounds=1,
        iterations=1,
    )
    text = render_series(
        data["cores"],
        data["speedup"],
        title="Fig 1 — baseline speedup vs cores (Neighbor-SAGE, ogbn-products, Ice Lake; normalised to 4 cores)",
    )
    save_result("fig01_baseline_scalability", text)

    # paper shape assertions: plateau past 16 cores for both libraries
    for lib, series in data["speedup"].items():
        idx16 = data["cores"].index(16)
        assert max(series[idx16:]) < 1.25 * series[idx16], lib
        assert series[idx16] > series[0], lib


def bench_fig1_backend_sweep(benchmark, save_result):
    """Real-engine wall clock per execution backend, same seed everywhere.

    ``launch s`` records each backend's worker-launch tax: zero for the
    in-process backends, one pool fork for ``process`` (the persistent
    runtime is the engine default — later epochs would launch for free).
    """
    data = benchmark.pedantic(
        lambda: fig1_engine_backend_sweep(
            "ogbn-products", backends=("inline", "thread", "process"), epochs=1
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            b,
            f"{data['epoch_time'][b][0]:.3f}",
            f"{data['launch_time'][b][0]:.3f}",
            f"{data['losses'][b][0]:.5f}",
        ]
        for b in data["backends"]
    ]
    text = render_table(
        ["backend", "epoch time s", "launch s", "mean loss"],
        rows,
        title="Fig 1 (measured) — engine wall clock per execution backend",
    )
    save_result("fig01_backend_sweep", text)

    # every backend ran and implements the same algorithm
    ref = data["losses"]["inline"]
    for b in data["backends"]:
        assert data["epoch_time"][b][0] > 0, b
        np.testing.assert_allclose(data["losses"][b], ref, rtol=1e-5)
    # only the process backend forks workers; the in-process backends
    # have no launch stage at all
    assert data["launch_time"]["inline"][0] == 0.0
    assert data["launch_time"]["thread"][0] == 0.0
    assert data["launch_time"]["process"][0] > 0.0


def bench_fig1_overlap_sweep(benchmark, save_result):
    """Pipelined sampling: wait hidden by overlap, sampler-core scaling.

    Measured: the prefetching loader's sample wait (overlap regime) and
    sampler-pipeline makespan (drain regime) vs sampler workers ``s`` on
    a dense synthetic instance, against the synchronous baseline.
    Modelled: the cost model's per-iteration sample-stage time vs ``s``
    (Amdahl in the sampling cores) — strictly decreasing by construction,
    the axis the pipeline makes real.
    """
    samplers = (1, 2, 4)
    data = benchmark.pedantic(
        lambda: fig1_overlap_sweep("reddit", samplers=samplers, scale_override=11),
        rounds=1,
        iterations=1,
    )
    rt, _ = build_runtime(
        ExperimentSetup("neighbor-sage", "ogbn-products", "icelake", "dgl")
    )
    modelled = {s: rt.breakdown((2, s, 8)).t_sample for s in (1, 2, 4, 8)}

    rows = [["off (sync)", f"{data['wait_off']:.3f}", f"{data['drain_off']:.3f}", "-"]]
    for s in samplers:
        rows.append(
            [
                f"s={s}",
                f"{data['wait'][s]:.3f}",
                f"{data['drain'][s]:.3f}",
                f"{modelled[s] * 1e3:.2f}",
            ]
        )
    text = render_table(
        ["samplers", "sample wait s", "drain makespan s", "modelled t_sample ms"],
        rows,
        title="Fig 1 (measured) — pipelined sampling overlap sweep (reddit 2^11)",
    )
    save_result("fig01_overlap_sweep", text)

    # semantics preservation: prefetched loss streams are bit-identical
    for s in samplers:
        assert data["losses"][s] == data["losses_off"], s
    # overlap hides sampling behind compute on any host
    for s in samplers:
        assert data["wait"][s] < data["wait_off"], s
    # the modelled sample stage strictly decreases with s — the
    # deterministic record of the strictly-decreasing claim
    vals = [modelled[s] for s in sorted(modelled)]
    assert all(a > b for a, b in zip(vals, vals[1:])), modelled
    # measured drain makespan needs cores left over for the consumer —
    # record-only on starved hosts; elsewhere assert the trend without
    # hard-gating single-round wall clock on scheduler noise: endpoints
    # must improve, intermediate steps may regress at most 10%
    if len(os.sched_getaffinity(0)) > max(samplers):
        drains = [data["drain"][s] for s in samplers]
        assert drains[-1] < drains[0], drains
        assert all(b < a * 1.10 for a, b in zip(drains, drains[1:])), drains
