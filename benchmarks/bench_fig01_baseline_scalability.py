"""Figure 1 — state-of-the-art GNN libraries suffer from poor scalability.

Paper shape: DGL and PyG training a 3-layer GraphSAGE on ogbn-products
stops speeding up past 16 cores (normalised speedup saturates well below
2x even at 128 cores).
"""

from repro.experiments.figures import fig1_baseline_scalability
from repro.experiments.reporting import render_series


def bench_fig1(benchmark, save_result):
    data = benchmark.pedantic(
        lambda: fig1_baseline_scalability("ogbn-products", "icelake"),
        rounds=1,
        iterations=1,
    )
    text = render_series(
        data["cores"],
        data["speedup"],
        title="Fig 1 — baseline speedup vs cores (Neighbor-SAGE, ogbn-products, Ice Lake; normalised to 4 cores)",
    )
    save_result("fig01_baseline_scalability", text)

    # paper shape assertions: plateau past 16 cores for both libraries
    for lib, series in data["speedup"].items():
        idx16 = data["cores"].index(16)
        assert max(series[idx16:]) < 1.25 * series[idx16], lib
        assert series[idx16] > series[0], lib
