"""Figures 5 & 6 — workload and bandwidth grow with the process count.

Paper shape (Fig. 6, Neighbor-SAGE on ogbn-products): total sampled edges
per epoch rise monotonically with the number of processes (smaller
per-process batches share fewer neighbours, Fig. 5), while bandwidth
utilisation rises and then flattens around 8 processes.
"""

from repro.experiments.figures import fig6_workload_bandwidth
from repro.experiments.reporting import render_table
from repro.experiments.setups import _dataset
from repro.gnn.models import make_task
from repro.workload.stats import duplicate_aggregation_count


def bench_fig6_workload_bandwidth(benchmark, save_result):
    rows = benchmark.pedantic(lambda: fig6_workload_bandwidth(), rounds=1, iterations=1)
    text = render_table(
        ["processes", "epoch edges (workload)", "bandwidth GB/s", "epoch time s"],
        [[r["processes"], r["epoch_edges"], r["bandwidth_gbs"], r["epoch_time"]] for r in rows],
        title="Fig 6 — workload & bandwidth vs #processes (Neighbor-SAGE, ogbn-products, Ice Lake)",
    )
    save_result("fig06_workload_bandwidth", text)

    edges = [r["epoch_edges"] for r in rows]
    assert edges == sorted(edges), "workload must grow with processes"
    bw = [r["bandwidth_gbs"] for r in rows]
    assert bw[1] > bw[0], "bandwidth must rise with multi-processing"
    # Fig 6 shape: the bandwidth curve's growth slows as it approaches the
    # machine limit while the workload keeps increasing
    early_gain = bw[1] / bw[0]
    late_gain = bw[-1] / bw[-2]
    assert late_gain < early_gain
    assert bw[-1] <= 1.05 * max(bw)


def bench_fig5_shared_neighbor_loss(benchmark, save_result):
    """Fig. 5 quantified on the real sampler: splitting one batch into 8
    sub-batches re-samples shared neighbours and inflates total edges."""
    ds = _dataset("ogbn-products", 0)
    sampler, _ = make_task("neighbor-sage", ds.layer_dims(3), seed=0)

    def run():
        return duplicate_aggregation_count(ds, sampler, 256, 8, seed=0)

    whole, split = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Fig 5 — shared-neighbour workload inflation (measured):\n"
        f"  edges, one batch of 256 seeds : {whole:.0f}\n"
        f"  edges, 8 sub-batches of 32    : {split:.0f}\n"
        f"  inflation                     : {split / whole:.2f}x"
    )
    save_result("fig05_shared_neighbors", text)
    assert split > whole
