"""Figures 7 & 12 — the optimal configuration varies across setups.

Paper shape (Fig. 7): six (sampler-model, dataset, platform) setups have
their minima at different points of the (processes, sampling cores)
plane; there is no single configuration that wins everywhere — which is
exactly why a per-setup online tuner is needed.  Fig. 12 is the same
grid for Neighbor-SAGE/Reddit rendered as a surface.
"""

from repro.experiments.figures import fig7_landscape
from repro.experiments.reporting import render_heatmap
from repro.experiments.setups import ExperimentSetup

# the six panels of paper Fig. 7 (all DGL)
PANELS = [
    ExperimentSetup("neighbor-sage", "ogbn-products", "icelake", "dgl"),
    ExperimentSetup("neighbor-sage", "reddit", "icelake", "dgl"),
    ExperimentSetup("neighbor-sage", "ogbn-products", "sapphire", "dgl"),
    ExperimentSetup("neighbor-sage", "reddit", "sapphire", "dgl"),
    ExperimentSetup("shadow-gcn", "ogbn-products", "icelake", "dgl"),
    ExperimentSetup("shadow-gcn", "ogbn-products", "sapphire", "dgl"),
]


def bench_fig7_landscapes(benchmark, save_result):
    def run():
        return [fig7_landscape(s) for s in PANELS]

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sections, optima = [], []
    for res in results:
        sections.append(
            render_heatmap(
                res["grid"],
                title=f"Fig 7 — {res['setup']}  (x=#processes, y=#sampling cores, opt={res['best']})",
            )
        )
        optima.append(res["best"])
    save_result("fig07_landscapes", "\n\n".join(sections))

    # paper claim: no single optimum across setups
    assert len(set(optima)) > 1, "optimal configuration must vary across setups"


def bench_fig12_reddit_surface(benchmark, save_result):
    res = benchmark.pedantic(
        lambda: fig7_landscape(ExperimentSetup("neighbor-sage", "reddit", "icelake", "dgl")),
        rounds=1,
        iterations=1,
    )
    grid = res["grid"]
    lo, hi = min(grid.values()), max(grid.values())
    text = (
        render_heatmap(grid, title="Fig 12 — design space (Neighbor-SAGE, Reddit, Ice Lake)")
        + f"\nepoch time range: {lo:.2f}s (best) .. {hi:.2f}s (worst), spread {hi / lo:.1f}x"
    )
    save_result("fig12_design_space", text)
    # the design space must be worth searching: a real spread exists
    assert hi / lo > 1.5
