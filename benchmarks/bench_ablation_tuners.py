"""Search-strategy ablation — BayesOpt vs Simulated Annealing vs Random.

Extends Tables IV/V: the paper attributes the auto-tuner's edge to the
surrogate model learning the landscape from past observations, where SA
and random search learn nothing.  We sweep all three at the same budget
over several seeds and report the quality distribution, plus the effect
of the acquisition function (EI vs PI vs UCB — an extension experiment).
"""

import numpy as np

from repro.core.autotuner import OnlineAutoTuner
from repro.experiments.reporting import render_table
from repro.experiments.setups import ExperimentSetup, build_runtime
from repro.tuning.anneal import SimulatedAnnealing
from repro.tuning.search import RandomSearch

SEEDS = range(6)


def bench_tuner_comparison(benchmark, save_result):
    setup = ExperimentSetup("shadow-gcn", "ogbn-products", "icelake", "dgl")
    rt, space = build_runtime(setup)
    optimum, _ = rt.argo_best_epoch_time(112, space)
    budget = space.paper_budget()

    def run():
        quality = {"bayesopt": [], "sim_anneal": [], "random": []}
        for seed in SEEDS:
            tuner = OnlineAutoTuner(space, budget, seed=seed)
            res = tuner.tune(rt.measure_epoch)
            quality["bayesopt"].append(optimum / rt.true_epoch_time(res.best_config))
            sa = SimulatedAnnealing().run(rt.measure_epoch, space, budget, seed=seed)
            quality["sim_anneal"].append(optimum / rt.true_epoch_time(sa.best_config))
            rnd = RandomSearch().run(rt.measure_epoch, space, budget, seed=seed)
            quality["random"].append(optimum / rt.true_epoch_time(rnd.best_config))
        return quality

    quality = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["strategy", "mean quality", "min", "max", "std"],
        [
            [k, float(np.mean(v)), float(np.min(v)), float(np.max(v)), float(np.std(v))]
            for k, v in quality.items()
        ],
        title=f"Tuner ablation — fraction of oracle performance at {budget} searches (ShaDow-GCN, products, Ice Lake)",
    )
    save_result("ablation_tuners", text)

    # the paper's comparison is against Simulated Annealing (its "random
    # search" baseline); uniform random without replacement is reported
    # for context — on plateau-shaped landscapes it can be competitive
    assert np.mean(quality["bayesopt"]) >= np.mean(quality["sim_anneal"]) - 0.02
    assert np.mean(quality["bayesopt"]) >= 0.9


def bench_acquisition_functions(benchmark, save_result):
    setup = ExperimentSetup("neighbor-sage", "reddit", "icelake", "dgl")
    rt, space = build_runtime(setup)
    optimum, _ = rt.argo_best_epoch_time(112, space)
    budget = space.paper_budget()

    def run():
        out = {}
        for acq in ("ei", "pi", "ucb"):
            vals = []
            for seed in SEEDS:
                tuner = OnlineAutoTuner(space, budget, seed=seed, acquisition=acq)
                res = tuner.tune(rt.measure_epoch)
                vals.append(optimum / rt.true_epoch_time(res.best_config))
            out[acq] = vals
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["acquisition", "mean quality", "min", "max"],
        [[k, float(np.mean(v)), float(np.min(v)), float(np.max(v))] for k, v in results.items()],
        title=f"Acquisition ablation — EI vs PI vs UCB at {budget} searches (Neighbor-SAGE, Reddit, Ice Lake)",
    )
    save_result("ablation_acquisitions", text)
    for k, v in results.items():
        assert np.mean(v) > 0.8, k
