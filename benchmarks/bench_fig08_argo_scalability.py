"""Figure 8 — with ARGO enabled, both libraries scale past 16 cores.

Paper shape (four panels: DGL/PyG x Ice Lake/Sapphire Rapids, on
ogbn-products): the baseline lines flatten at 16 cores while the ARGO
lines keep rising, flattening only near the machine's socket-bandwidth
limit (past 64 cores on Ice Lake).

``bench_fig8_autotune_backends`` additionally runs the online autotuner
over a :class:`BackendSpace` against the *real* engine, demonstrating
that the execution backend is a searchable axis of the design space.
"""

import pytest

from repro.core.autotuner import OnlineAutoTuner
from repro.core.config import RuntimeConfig
from repro.core.train_loop import make_train_fn
from repro.experiments.figures import fig8_argo_scalability, fig8_persistent_overhead
from repro.experiments.reporting import render_series, render_table
from repro.gnn.models import make_task
from repro.graph.datasets import load_dataset
from repro.tuning.space import BackendSpace, ConfigSpace


@pytest.mark.parametrize("platform", ["icelake", "sapphire"])
def bench_fig8(benchmark, save_result, platform):
    data = benchmark.pedantic(
        lambda: fig8_argo_scalability("ogbn-products", platform), rounds=1, iterations=1
    )
    text = render_series(
        data["cores"],
        data["series"],
        title=f"Fig 8 — speedup vs cores on {platform} (normalised to 4 cores)",
    )
    save_result(f"fig08_scalability_{platform}", text)

    cores = data["cores"]
    idx16 = cores.index(16)
    for lib in ("DGL", "PYG"):
        base = data["series"][f"{lib}-neighbor-sage"]
        # baseline plateaus after 16 cores
        assert max(base[idx16:]) < 1.25 * base[idx16]
    # ARGO keeps scaling past 16 cores wherever the library leaves the
    # stages tunable: DGL (both tasks) and PyG-ShaDow.  PyG-Neighbor is
    # bound by untunable per-iteration overhead (paper Table V) — ARGO
    # merely must not regress there.
    for key in ("ARGO-DGL-neighbor-sage", "ARGO-DGL-shadow-gcn", "ARGO-PYG-shadow-gcn"):
        argo = data["series"][key]
        assert argo[-1] > 1.1 * argo[idx16], key
    pyg_n = data["series"]["ARGO-PYG-neighbor-sage"]
    assert pyg_n[-1] >= 0.95 * pyg_n[idx16]


def bench_fig8_persistent_overhead(benchmark, save_result):
    """Relaunch tax eliminated: persistent pool vs respawn-per-epoch.

    The per-epoch ``launch_time`` record for both process-backend
    lifecycles: respawn mode pays fork + replica pickling in every
    measured epoch; the persistent runtime pays it once and then drives
    the same workers with shared-memory plan/param channels, so every
    later epoch's launch cost is a weight memcpy.  Loss streams are
    bit-identical — only the launch tax moves.
    """
    data = benchmark.pedantic(
        lambda: fig8_persistent_overhead("ogbn-products", epochs=4), rounds=1, iterations=1
    )
    rows = []
    for mode in data["modes"]:
        for epoch, (launch, total) in enumerate(
            zip(data["launch_time"][mode], data["epoch_time"][mode])
        ):
            rows.append([mode, epoch, f"{launch * 1e3:.2f}", f"{total * 1e3:.1f}"])
    text = render_table(
        ["mode", "epoch", "launch ms", "epoch ms"],
        rows,
        title="Fig 8 (measured) — worker-launch overhead: persistent pool vs respawn",
    )
    save_result("fig08_persistent_overhead", text)

    persistent = data["launch_time"]["persistent"]
    respawn = data["launch_time"]["respawn"]
    # identical numerics: the lifecycle change may not touch the algorithm
    assert data["losses"]["persistent"] == data["losses"]["respawn"]
    # epoch 0 forks in both modes
    assert persistent[0] > 0 and respawn[0] > 0
    # the relaunch tax is eliminated: once warm, an epoch's launch cost is
    # a weight memcpy, far below the first epoch's fork...
    assert max(persistent[1:]) < 0.5 * persistent[0]
    # ...while respawn mode keeps paying a real fork every epoch
    assert min(respawn) > 0
    assert min(respawn[1:]) > max(persistent[1:])


def bench_fig8_autotune_backends(benchmark, save_result):
    """Autotuner searching (n, s, t, backend) against real epoch times.

    The train fn caches backend instances across the tuner's re-launches,
    so process-backend trials that keep ``n`` reuse the persistent worker
    pool — the steady-state throughput the tuner should be ranking.
    """

    def run():
        ds = load_dataset("ogbn-products", seed=0, scale_override=9)
        sampler, model = make_task(
            "neighbor-sage", ds.layer_dims(2), seed=0, fanouts=[5, 5]
        )
        space = BackendSpace(
            ConfigSpace(2, max_processes=2), backends=("inline", "thread", "process")
        )
        train = make_train_fn(ds, sampler, model, global_batch_size=64, seed=0)
        tuner = OnlineAutoTuner(space, num_searches=len(space), seed=0)
        try:
            result = tuner.tune(
                lambda cfg: sum(train(config=RuntimeConfig.from_tuple(cfg), epochs=1))
            )
        finally:
            train.close()
        return space, result

    space, result = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [str(RuntimeConfig.from_tuple(cfg)), f"{t:.3f}"] for cfg, t in result.history
    ]
    text = render_table(
        ["config", "epoch time s"],
        rows,
        title=f"Fig 8 (measured) — autotuner over backends (best={result.best_config})",
    )
    save_result("fig08_autotune_backends", text)

    tried = {cfg[3] for cfg, _ in result.history}
    assert tried == {"inline", "thread", "process"}
    assert result.best_config in space


def bench_fig8_engine_overlap(benchmark, save_result):
    """Engine-level overlap on/off: per-stage timings, identical losses.

    The real Multi-Process Engine under the process backend with the
    sampling/compute pipeline off vs on (2 sampler workers per rank):
    the trainers' sample wait collapses while the loss trajectory stays
    bit-identical — the tuner's ``s`` knob now moves wall clock without
    touching semantics.
    """
    from repro.core.engine import MultiProcessEngine

    def run():
        ds = load_dataset("reddit", seed=0, scale_override=11)
        out = {}
        for prefetch in (False, True):
            sampler, model = make_task(
                "neighbor-sage", ds.layer_dims(2), seed=7, fanouts=[10, 10]
            )
            engine = MultiProcessEngine(
                ds,
                sampler,
                model,
                num_processes=2,
                global_batch_size=128,
                backend="process",
                seed=0,
                prefetch=prefetch,
                queue_depth=4,
                sampler_workers=2,
            )
            try:
                hist = engine.train(1)
            finally:
                engine.shutdown()
            e = hist.epochs[0]
            out[prefetch] = {
                "mean_loss": e.mean_loss,
                "epoch_time": e.epoch_time,
                "sample_wait": e.sample_wait,
                "compute_time": e.compute_time,
            }
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    if not data[True]["sample_wait"] < data[False]["sample_wait"]:
        # single-round wall clock on a shared runner can hiccup; one
        # retry separates scheduler noise from a real overlap regression
        data = run()
    rows = [
        [
            "on" if prefetch else "off",
            f"{d['epoch_time']:.3f}",
            f"{d['sample_wait']:.3f}",
            f"{d['compute_time']:.3f}",
            f"{d['mean_loss']:.6f}",
        ]
        for prefetch, d in data.items()
    ]
    text = render_table(
        ["prefetch", "epoch s", "sample wait s", "compute s", "mean loss"],
        rows,
        title="Fig 8 (measured) — engine sample/compute overlap, process backend",
    )
    save_result("fig08_engine_overlap", text)

    assert data[True]["mean_loss"] == data[False]["mean_loss"]
    assert data[True]["sample_wait"] < data[False]["sample_wait"]
