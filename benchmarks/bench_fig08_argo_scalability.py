"""Figure 8 — with ARGO enabled, both libraries scale past 16 cores.

Paper shape (four panels: DGL/PyG x Ice Lake/Sapphire Rapids, on
ogbn-products): the baseline lines flatten at 16 cores while the ARGO
lines keep rising, flattening only near the machine's socket-bandwidth
limit (past 64 cores on Ice Lake).
"""

import pytest

from repro.experiments.figures import fig8_argo_scalability
from repro.experiments.reporting import render_series


@pytest.mark.parametrize("platform", ["icelake", "sapphire"])
def bench_fig8(benchmark, save_result, platform):
    data = benchmark.pedantic(
        lambda: fig8_argo_scalability("ogbn-products", platform), rounds=1, iterations=1
    )
    text = render_series(
        data["cores"],
        data["series"],
        title=f"Fig 8 — speedup vs cores on {platform} (normalised to 4 cores)",
    )
    save_result(f"fig08_scalability_{platform}", text)

    cores = data["cores"]
    idx16 = cores.index(16)
    for lib in ("DGL", "PYG"):
        base = data["series"][f"{lib}-neighbor-sage"]
        # baseline plateaus after 16 cores
        assert max(base[idx16:]) < 1.25 * base[idx16]
    # ARGO keeps scaling past 16 cores wherever the library leaves the
    # stages tunable: DGL (both tasks) and PyG-ShaDow.  PyG-Neighbor is
    # bound by untunable per-iteration overhead (paper Table V) — ARGO
    # merely must not regress there.
    for key in ("ARGO-DGL-neighbor-sage", "ARGO-DGL-shadow-gcn", "ARGO-PYG-shadow-gcn"):
        argo = data["series"][key]
        assert argo[-1] > 1.1 * argo[idx16], key
    pyg_n = data["series"]["ARGO-PYG-neighbor-sage"]
    assert pyg_n[-1] >= 0.95 * pyg_n[idx16]
