"""NUMA binding ablation (paper Sec. IX future-work direction).

The paper's closing profiling found that more than half of ARGO's data
accesses crossed the UPI link on the 4-socket Ice Lake, limiting
bandwidth utilisation, and proposes NUMA-aware extensions.  This ablation
quantifies the other direction: what does ARGO's *compact* core binding
already buy over an unbound, socket-striped ("spread") placement?
"""

from repro.experiments.reporting import render_table
from repro.experiments.setups import ExperimentSetup, _dataset, _workload
from repro.platform.costmodel import CostModel
from repro.platform.library import DGL
from repro.platform.spec import ICE_LAKE_8380H

CONFIGS = [(2, 4, 24), (4, 4, 24), (8, 4, 10)]


def bench_binding_policy(benchmark, save_result):
    ds = _dataset("ogbn-products", 0)
    wm = _workload("ogbn-products", "shadow-gcn", 0)
    common = dict(
        workload=wm,
        sampler_name="shadow",
        model_name="gcn",
        dims=ds.layer_dims(3),
        train_nodes=ds.spec.paper_train_nodes,
    )

    def run():
        compact = CostModel(ICE_LAKE_8380H, DGL, binder_policy="compact", **common)
        spread = CostModel(ICE_LAKE_8380H, DGL, binder_policy="spread", **common)
        rows = []
        for cfg in CONFIGS:
            tc = compact.epoch_time(*cfg).total
            ts = spread.epoch_time(*cfg).total
            rows.append({"config": cfg, "compact": tc, "spread": ts, "penalty": ts / tc})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["config", "compact (s)", "spread (s)", "spread penalty"],
        [[str(r["config"]), r["compact"], r["spread"], r["penalty"]] for r in rows],
        title="NUMA ablation — compact (ARGO) vs spread core binding (ShaDow-GCN, products, Ice Lake)",
    )
    save_result("ablation_numa", text)

    for r in rows:
        assert r["penalty"] > 1.0, f"spread must not beat compact at {r['config']}"
    # the penalty matters most when processes would otherwise be NUMA-local
    assert max(r["penalty"] for r in rows) > 1.05
