"""Fig 10 (frontier) — shared-frontier batching cuts per-request service time.

The per-node serving forward pays the full Python/op overhead of an
``L``-layer sampled forward for every request; the frontier merger
(:mod:`repro.serve.frontier`) runs one vectorised forward per
micro-batch over the block-diagonal union of the per-node frontiers —
bit-identical predictions (asserted here), amortised overhead.

``bench_fig10_frontier_batching`` drives both batch modes through the
same overloaded open-loop workload (arrivals far faster than service,
so the micro-batcher flushes full ``max_batch`` batches) with the
prediction cache disabled — the recording isolates *compute* service
time, which is exactly what the merge amortises.  The headline numbers:
drain makespan (summed real wall time inside ``predict``) and mean
service time per request, per ``max_batch``.

The per-phase breakdown (``ServingReport.sample_ms`` et al.) adds the
PR 6 story: the fused multi-seed sampler collapses what used to be a
~80% sampling share of merged service time to well under half.

Assertions gate the PR's claims: predictions bit-identical across the
modes, at ``max_batch >= 8`` the frontier drain makespan does not
exceed the per-node one (on the dev container the reduction is roughly
2-4x of the forward time; the CI gate is the conservative ``<=``), and
the frontier path's sampling share stays below 0.5 at those sizes.
"""

import numpy as np
import pytest

from repro.core.engine import MultiProcessEngine
from repro.experiments.reporting import render_table
from repro.gnn.models import make_task
from repro.graph.datasets import load_dataset
from repro.serve import InferenceEngine, ModelSnapshot, run_serving_workload


@pytest.fixture(scope="module")
def serving_setup():
    ds = load_dataset("ogbn-products", seed=0, scale_override=9)
    sampler, model = make_task("neighbor-sage", ds.layer_dims(2), seed=0, fanouts=[5, 5])
    trainer = MultiProcessEngine(
        ds, sampler, model, num_processes=1, global_batch_size=64,
        backend="inline", seed=0,
    )
    trainer.train(1)
    return ds, ModelSnapshot.from_engine(trainer)


def bench_fig10_frontier_batching(benchmark, save_result, serving_setup):
    ds, snapshot = serving_setup
    num_requests = 192

    def measure(batch_mode, max_batch):
        engine = InferenceEngine(
            snapshot, ds, mode="inline", batch_mode=batch_mode, cache_entries=0
        )
        try:
            # overload + uniform traffic: full batches of mostly-distinct
            # nodes, no cache — the compute path is the whole story
            return run_serving_workload(
                engine, num_requests=num_requests, rate_rps=1e7, zipf_alpha=0.0,
                max_batch=max_batch, max_wait_ms=50.0, seed=0,
            )
        finally:
            engine.close()

    def run():
        out = {}
        for max_batch in (1, 8, 32):
            for mode in ("per_node", "frontier"):
                out[(mode, max_batch)] = measure(mode, max_batch)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for max_batch in (1, 8, 32):
        per_node = data[("per_node", max_batch)]
        frontier = data[("frontier", max_batch)]
        speedup = per_node.service_s / max(frontier.service_s, 1e-12)
        rows.append(
            [
                max_batch,
                f"{per_node.service_s * 1e3:.1f}",
                f"{frontier.service_s * 1e3:.1f}",
                f"{per_node.service_s / num_requests * 1e6:.0f}",
                f"{frontier.service_s / num_requests * 1e6:.0f}",
                f"{speedup:.2f}x",
                f"{frontier.sampling_share:.2f}",
            ]
        )
    save_result(
        "fig10_frontier_batching",
        render_table(
            ["max_batch", "per-node drain ms", "frontier drain ms",
             "per-node us/req", "frontier us/req", "speedup", "frontier sample share"],
            rows,
            title="Fig 10 — shared-frontier batching: drain makespan per batch mode",
        ),
    )

    # ------------------------------------------------------------------
    # bit-identical predictions across the two forwards (engine-level)
    nodes = ds.val_idx[:32]
    with InferenceEngine(snapshot, ds, batch_mode="per_node", cache_entries=0) as solo:
        expected = solo.predict(nodes)
    with InferenceEngine(snapshot, ds, batch_mode="frontier", cache_entries=0) as merged:
        np.testing.assert_array_equal(merged.predict(nodes), expected)

    for (mode, max_batch), report in data.items():
        assert report.requests == num_requests
        assert np.isfinite(report.p99_ms)
    # batching really happened where it could
    assert data[("frontier", 8)].mean_batch > 2.0
    # the PR's headline: at real batch sizes the merged forward drains
    # the same workload in no more wall time than per-node forwards
    for max_batch in (8, 32):
        assert (
            data[("frontier", max_batch)].service_s
            <= data[("per_node", max_batch)].service_s
        ), f"frontier batching slower at max_batch={max_batch}"
    # PR 6: the fused multi-seed sampler keeps frontier sampling well
    # under half of merged service time (it used to be ~80%)
    for max_batch in (8, 32):
        share = data[("frontier", max_batch)].sampling_share
        assert share < 0.5, (
            f"sampling share {share:.2f} >= 0.5 at max_batch={max_batch}"
        )
