"""Figure 9 — ARGO preserves GNN training semantics.

Paper shape: accuracy-vs-minibatch curves of ARGO:2/4/8 overlap the
single-process DGL curve for both Neighbor-SAGE and ShaDow-GCN.  This
benchmark runs *real* training on the Multi-Process Engine (not the
performance simulator).
"""

import pytest

from repro.experiments.figures import fig9_convergence
from repro.experiments.reporting import render_table


@pytest.mark.parametrize("task", ["neighbor-sage", "shadow-gcn"])
def bench_fig9(benchmark, save_result, task):
    data = benchmark.pedantic(
        lambda: fig9_convergence(task=task, epochs=5, process_counts=(1, 2, 4, 8)),
        rounds=1,
        iterations=1,
    )
    curves = data["curves"]
    rows = []
    n_points = min(len(c) for c in curves.values())
    for i in range(n_points):
        row = [curves["DGL"][i][0]] + [curves[k][i][1] for k in curves]
        rows.append(row)
    text = render_table(
        ["minibatches(DGL)"] + list(curves),
        rows,
        title=f"Fig 9 — accuracy vs training progress ({task}, real engine)",
    )
    save_result(f"fig09_convergence_{task.replace('-', '_')}", text)

    # overlap check: final accuracies within a small band of the baseline
    finals = {k: v[-1][1] for k, v in curves.items()}
    base = finals["DGL"]
    for k, acc in finals.items():
        assert abs(acc - base) < 0.15, f"{k} diverged from single-process baseline"
