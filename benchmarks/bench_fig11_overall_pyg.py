"""Figure 11 — overall 200-epoch training time, PyG vs ARGO.

Paper shape: up to 5.06x end-to-end speedup (ShaDow-GCN on ogbn-products,
Ice Lake); Neighbor-SAGE rows improve only mildly (1.05x-1.24x) because
PyG's per-iteration overhead is untunable.
"""

from repro.experiments.figures import fig10_overall_training
from repro.experiments.reporting import render_table
from repro.experiments.setups import DATASET_NAMES, ExperimentSetup

SETUPS = [
    ExperimentSetup(task, ds, plat, "pyg")
    for ds in DATASET_NAMES
    for task in ("neighbor-sage", "shadow-gcn")
    for plat in ("icelake", "sapphire")
]


def bench_fig11(benchmark, save_result):
    def run():
        return [fig10_overall_training(s, epochs=200) for s in SETUPS]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["setup", "PyG default (s)", "ARGO (s)", "speedup", "best config"],
        [
            [r["setup"], r["default_total"], r["argo_total"], r["speedup"], str(r["best_config"])]
            for r in rows
        ],
        title="Fig 11 — overall training time, 200 epochs (PyG vs ARGO, tuning overhead included)",
    )
    save_result("fig11_overall_pyg", text)

    shadow = [r["speedup"] for r in rows if "shadow" in r["setup"]]
    neighbor = [r["speedup"] for r in rows if "neighbor" in r["setup"]]
    # ShaDow gains dominate (paper: up to 5.06x vs up to 1.24x)
    assert max(shadow) > 2.0
    assert max(shadow) > max(neighbor)
    # ARGO never loses badly even where gains are structural-overhead-bound
    assert min(neighbor) > 0.9
