"""Fig 12 (load balance) — skew-aware sharding vs index-chunked placement.

One recording over the pool serving runtime: an adversarial hot-key
workload (Zipf popularity ranked by hub in-degree over a 35% organic
background, so every micro-batch mixes fanout-capped hub frontiers with
cheap one-off requests) drives the same engine under the three
request->rank shard policies at Zipf exponents s in {1.1, 1.5, 2.2} and
pool sizes {2, 4}.  ``chunk`` splits requests by index, blind to that
cost mix; ``size_binned`` LPT-packs by the sampled-cost probe; ``steal``
adds shared-memory segment stealing on top.  The
recording replays the workload under ``service_model="critical_path"``:
each batch's service time is its parallel completion time — the max
per-rank CPU busy, measured scheduling-independently inside the
workers — so makespan (summed critical paths) and p99 reflect what the
placement policy controls on real multi-core serving hardware even when
this bench runs on an oversubscribed or single-core host, where raw
wall time degenerates to total work and is blind to placement.  The
asserted claim: under real skew (s >= 1.5) with multiple ranks,
skew-aware placement beats chunking on both makespan and p99 — at
**bitwise parity**, verified against an inline engine, because requests
keep per-node RNG streams and segment-local BLAS calls whatever rank
runs them.

Every trial shares one persistent pool (workers 4 -> 2 by park/rebind):
the whole figure costs a single fork, ``pool.launches == 1``.
"""

import multiprocessing as mp

import numpy as np
import pytest

from repro.core.engine import MultiProcessEngine
from repro.experiments.reporting import render_table
from repro.exec.pool import WorkerPool
from repro.gnn.models import make_task
from repro.graph.datasets import load_dataset
from repro.graph.shm import SharedGraphStore
from repro.serve import InferenceEngine, ModelSnapshot, run_serving_workload
from repro.serve.workload import hot_key_nodes
from repro.utils.rng import derive_rng

POLICIES = ("chunk", "size_binned", "steal")
SKEWS = (1.1, 1.5, 2.2)
WORKERS = (4, 2)  # descending: shrinking parks ranks instead of re-forking
NUM_REQUESTS = 256


@pytest.fixture(scope="module")
def balance_setup():
    # scale 11 (not the test-suite 9): the within-batch dedup collapses a
    # hot-key stream to its distinct nodes, so the graph must be large
    # enough that those distinct frontiers carry real, skewed compute —
    # otherwise dispatch overhead drowns the signal the figure measures
    ds = load_dataset("ogbn-products", seed=0, scale_override=11)
    # three hops: a hub's frontier multiplies through every hop while an
    # organic leaf's stays tiny, so per-request compute really follows the
    # cost probe instead of drowning in fixed per-request dispatch overhead
    sampler, model = make_task(
        "neighbor-sage", ds.layer_dims(3), seed=0, fanouts=[15, 10, 5]
    )
    trainer = MultiProcessEngine(
        ds, sampler, model, num_processes=1, global_batch_size=64,
        backend="inline", seed=0,
    )
    trainer.train(1)
    return ds, ModelSnapshot.from_engine(trainer)


def bench_fig12_load_balance(benchmark, save_result, balance_setup):
    ds, snapshot = balance_setup
    catalog = np.arange(ds.num_nodes, dtype=np.int64)

    def run():
        pool = WorkerPool(mp.get_context(), timeout=60.0)
        model = snapshot.build_model()
        store = SharedGraphStore.from_dataset(ds)
        reports = {}
        parity = {}
        parity_nodes = hot_key_nodes(
            catalog, 24, alpha=2.2, graph=ds.graph,
            background_fraction=0.35, rng=derive_rng(0, "fig12-parity"),
        )
        try:
            with InferenceEngine(snapshot, ds, cache_entries=0) as solo:
                parity["inline"] = solo.predict(parity_nodes)
            for workers in WORKERS:
                for skew in SKEWS:
                    seq = hot_key_nodes(
                        catalog, NUM_REQUESTS, alpha=skew, graph=ds.graph,
                        background_fraction=0.35,
                        rng=derive_rng(0, "fig12", int(skew * 10)),
                    )
                    for policy in POLICIES:
                        engine = InferenceEngine(
                            snapshot, ds, mode="pool", batch_mode="frontier",
                            shard_policy=policy, workers=workers,
                            cache_entries=0, pool=pool, model=model, store=store,
                        )
                        engine.warm_up()
                        reports[(workers, skew, policy)] = run_serving_workload(
                            engine, num_requests=NUM_REQUESTS, rate_rps=50000.0,
                            max_batch=64, max_wait_ms=1.0, nodes=catalog,
                            node_sequence=seq, service_model="critical_path",
                            seed=0,
                        )
                        if workers == 2 and skew == SKEWS[-1]:
                            parity[policy] = engine.predict(parity_nodes)
                        engine.close()
            launches = pool.launches
        finally:
            pool.shutdown()
            if not store.closed:
                store.unlink()
        return reports, parity, launches

    reports, parity, launches = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [w, f"{s:g}", p, f"{r.service_s * 1e3:.1f}", f"{r.p99_ms:.2f}",
         f"{r.imbalance:.2f}", r.steal_count]
        for (w, s, p), r in reports.items()
    ]
    save_result(
        "fig12_load_balance",
        render_table(
            ["workers", "zipf s", "policy", "makespan ms", "p99 ms",
             "imbalance", "steals"],
            rows,
            title="Fig 12 — makespan and p99 vs skew: chunk vs size_binned vs steal",
        ),
    )

    # placement is invisible in the bits: every policy == inline, exactly
    for policy in POLICIES:
        np.testing.assert_array_equal(parity[policy], parity["inline"])
    # one fork served every (workers, skew, policy) trial
    assert launches == 1

    for (w, s, policy), r in reports.items():
        assert r.requests == NUM_REQUESTS and r.shed_count == 0
        assert np.isfinite(r.p99_ms)
        assert r.shard_policy == policy
        assert r.service_model == "critical_path"
        assert len(r.rank_busy_ms) >= 1 and r.imbalance >= 1.0
    # the paper's claim: under real skew with multiple ranks, skew-aware
    # placement wins on makespan AND tail latency
    for w in WORKERS:
        for s in (1.5, 2.2):
            chunk = reports[(w, s, "chunk")]
            best_service = min(
                reports[(w, s, p)].service_s for p in ("size_binned", "steal")
            )
            best_p99 = min(reports[(w, s, p)].p99_ms for p in ("size_binned", "steal"))
            assert best_service <= chunk.service_s, (w, s)
            assert best_p99 <= chunk.p99_ms, (w, s)
