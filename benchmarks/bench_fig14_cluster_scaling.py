"""Fig 14 — horizontal serving scale-out: cluster throughput vs replicas.

One recording over the multi-replica serving layer
(:mod:`repro.serve.cluster`): the same Zipf/Poisson drain workload is
driven through a :class:`~repro.serve.cluster.ServingCluster` at 1, 2
and 4 inline replicas.  The node stream and arrival epochs are drawn
once at the edge, so every replica count serves the *same* traffic; the
merged report folds the per-replica segments with wall-clock (max)
duration, which is what makes the throughput column honest — replicas
overlap on the virtual clock, they don't queue behind each other.

Assertions lock in the cluster's two contracts:

* **parity** — predictions are bit-identical to a single inline engine
  at every replica count (routing cannot change bits), and
* **scaling** — under drain load, 2 replicas clear the burst markedly
  faster than 1, and 4 faster still (conservative floors: the split is
  compute-bound once caches are disabled).

A second table compares route policies at a fixed replica count with
caches enabled: cache-affinity routing keeps a hot node on one warm
replica, so its cluster-wide hit rate must be at least round-robin's
(which pays up to R cold misses per hot node).
"""

import numpy as np
import pytest

from repro.core.engine import MultiProcessEngine
from repro.experiments.reporting import render_table
from repro.gnn.models import make_task
from repro.graph.datasets import load_dataset
from repro.serve import InferenceEngine, ModelSnapshot, ServingCluster
from repro.serve.cluster import ROUTE_POLICIES, run_cluster_workload


@pytest.fixture(scope="module")
def serving_setup():
    ds = load_dataset("ogbn-products", seed=0, scale_override=9)
    sampler, model = make_task("neighbor-sage", ds.layer_dims(2), seed=0, fanouts=[5, 5])
    trainer = MultiProcessEngine(
        ds, sampler, model, num_processes=1, global_batch_size=64,
        backend="inline", seed=0,
    )
    trainer.train(1)
    return ds, ModelSnapshot.from_engine(trainer)


def bench_fig14_cluster_scaling(benchmark, save_result, serving_setup):
    ds, snapshot = serving_setup
    requests = 192

    def measure(replicas, route_policy, cache_entries):
        with ServingCluster(
            snapshot, ds, replicas=replicas, route_policy=route_policy,
            cache_entries=cache_entries,
        ) as cluster:
            result = run_cluster_workload(
                cluster, num_requests=requests, rate_rps=1e7, zipf_alpha=1.2,
                max_batch=8, max_wait_ms=2.0, seed=0,
            )
        return result

    def run():
        # scaling sweep: caches off so the split is pure compute
        sweep = {n: measure(n, "round_robin", 0) for n in (1, 2, 4)}
        # policy comparison at fixed width: caches on, warmth matters
        policies = {p: measure(4, p, 2048) for p in ROUTE_POLICIES}
        return sweep, policies

    sweep, policies = benchmark.pedantic(run, rounds=1, iterations=1)

    base = sweep[1].report.throughput_rps
    rows = [
        [n, f"{r.report.throughput_rps:.0f}",
         f"{r.report.throughput_rps / base:.2f}x",
         f"{r.report.duration_s * 1e3:.1f}", f"{r.report.p99_ms:.2f}",
         str(np.bincount(r.assignments, minlength=n).tolist())]
        for n, r in sweep.items()
    ]
    save_result(
        "fig14_cluster_scaling",
        render_table(
            ["replicas", "req/s", "speedup", "makespan ms", "p99 ms", "split"],
            rows,
            title="Fig 14 — cluster throughput vs replica count (drain load)",
        ),
    )
    rows = [
        [p, f"{r.report.throughput_rps:.0f}", f"{r.report.cache.hit_rate:.2f}",
         str(r.report.cache.hits)]
        for p, r in policies.items()
    ]
    save_result(
        "fig14_route_policies",
        render_table(
            ["route policy", "req/s", "cluster hit rate", "hits"],
            rows,
            title="Fig 14 — route policies at 4 replicas (caches on)",
        ),
    )

    # -- parity: the cluster is bit-identical to one engine, any width --
    nodes = ds.val_idx[:16]
    with InferenceEngine(snapshot, ds) as ref:
        expected = ref.predict(nodes)
    for n in (1, 2, 4):
        with ServingCluster(snapshot, ds, replicas=n) as cluster:
            np.testing.assert_array_equal(cluster.predict(nodes), expected)

    # -- merged-report correctness: wall-clock fold, not a sum ----------
    for result in sweep.values():
        segments = list(result.replica_reports.values())
        assert result.report.requests == requests and result.report.served == requests
        assert result.report.duration_s == max(s.duration_s for s in segments)
        assert result.report.throughput_rps == pytest.approx(
            result.report.served / result.report.duration_s
        )
    # round-robin splits the drain burst evenly
    counts = np.bincount(sweep[4].assignments, minlength=4)
    assert counts.max() - counts.min() <= 1

    # -- scaling: conservative floors under the compute-bound split ----
    assert sweep[2].report.throughput_rps >= 1.25 * base
    assert sweep[4].report.throughput_rps >= 1.5 * base
    assert sweep[4].report.throughput_rps >= sweep[2].report.throughput_rps

    # -- affinity keeps hot nodes warm: hit rate at least round-robin's
    assert (
        policies["cache_affinity"].report.cache.hit_rate
        >= policies["round_robin"].report.cache.hit_rate
    )
