"""Micro-benchmarks of the substrate hot paths (real wall-clock timing).

These are genuine pytest-benchmark timings of the kernels the library's
performance rests on: neighbour sampling, ShaDow subgraph induction,
segment aggregation, one real training step, a GP fit, and one full
cost-model evaluation (which the tuner calls hundreds of times).
"""

import numpy as np

from repro.autograd.ops import gather_rows
from repro.autograd.tensor import Tensor
from repro.bayesopt.gp import GaussianProcessRegressor
from repro.experiments.setups import _dataset
from repro.gnn.aggregate import aggregate_mean
from repro.gnn.models import make_task
from repro.sampling.neighbor import NeighborSampler
from repro.sampling.shadow import ShadowSampler
from repro.utils.rng import derive_rng


def bench_neighbor_sampling(benchmark):
    ds = _dataset("ogbn-products", 0)
    sampler = NeighborSampler([15, 10, 5])
    seeds = ds.train_idx[:1024]
    rng = derive_rng(0)
    mb = benchmark(lambda: sampler.sample(ds.graph, seeds, rng=rng))
    assert mb.total_edges > 0


def bench_shadow_sampling(benchmark):
    ds = _dataset("ogbn-products", 0)
    sampler = ShadowSampler(fanouts=[10, 5], num_layers=3)
    seeds = ds.train_idx[:256]
    rng = derive_rng(0)
    mb = benchmark(lambda: sampler.sample(ds.graph, seeds, rng=rng))
    assert mb.total_edges > 0


def bench_batched_frontier_sampling(benchmark):
    """The PR 6 serving-hot-path kernel: one fused multi-seed pass
    drawing a whole micro-batch's frontiers (32 single-node requests),
    asserted bit-identical to the looped sample-then-merge reference."""
    from repro.sampling.base import Sampler
    from repro.sampling.batch import merge_frontiers

    ds = _dataset("ogbn-products", 0)
    sampler = NeighborSampler([15, 10, 5])
    nodes = ds.train_idx[:32]
    batches = [nodes[i : i + 1] for i in range(len(nodes))]

    def rngs():
        return [derive_rng(0, "serve", int(n)) for n in nodes]

    looped = Sampler.sample_merged(sampler, ds.graph, batches, rngs())
    fused = benchmark(lambda: sampler.sample_merged(ds.graph, batches, rngs()))
    assert len(fused.blocks) == len(looped.blocks)
    for a, b in zip(looped.blocks, fused.blocks):
        np.testing.assert_array_equal(a.src_ids, b.src_ids)
        np.testing.assert_array_equal(a.edge_src, b.edge_src)
        np.testing.assert_array_equal(a.edge_dst, b.edge_dst)
        np.testing.assert_array_equal(a.src_splits, b.src_splits)
        np.testing.assert_array_equal(a.dst_splits, b.dst_splits)


def bench_segment_aggregation(benchmark):
    rng = np.random.default_rng(0)
    h = Tensor(rng.standard_normal((20_000, 128)).astype(np.float32))
    src = rng.integers(0, 20_000, size=200_000)
    dst = rng.integers(0, 5_000, size=200_000)
    out = benchmark(lambda: aggregate_mean(h, src, dst, 5_000))
    assert out.shape == (5_000, 128)


def bench_training_step(benchmark):
    from repro.autograd.functional import cross_entropy
    from repro.autograd.optim import Adam

    ds = _dataset("ogbn-products", 0)
    sampler, model = make_task("neighbor-sage", ds.layer_dims(3), seed=0)
    opt = Adam(model.parameters(), lr=1e-3)
    feats = Tensor(ds.features)
    batch = sampler.sample(ds.graph, ds.train_idx[:256], rng=derive_rng(0))

    def step():
        x = gather_rows(feats, batch.input_ids)
        loss = cross_entropy(model(batch.blocks, x), ds.labels[batch.seeds])
        model.zero_grad()
        loss.backward()
        opt.step()
        return loss.item()

    assert benchmark(step) > 0


def bench_gp_fit_predict(benchmark):
    rng = np.random.default_rng(0)
    X = rng.random((30, 2))
    y = np.sin(5 * X[:, 0]) + X[:, 1]
    Xq = rng.random((300, 2))

    def fit_predict():
        gp = GaussianProcessRegressor()
        gp.fit(X, y)
        return gp.predict(Xq)

    mean, std = benchmark(fit_predict)
    assert mean.shape == (300,)


def bench_cost_model_eval(benchmark):
    from repro.experiments.setups import ExperimentSetup, build_runtime

    rt, space = build_runtime(ExperimentSetup("neighbor-sage", "ogbn-products", "icelake", "dgl"))
    cfgs = space.configs

    def sweep():
        return sum(rt.true_epoch_time(c) for c in cfgs[:50])

    assert benchmark(sweep) > 0


def bench_profiled_step(benchmark, save_result):
    """Where a real training step spends its time (Fig. 2's evidence on
    actual execution): irregular gathers dwarf the dense GEMM time."""
    from repro.platform.profiling import profile_training_step

    ds = _dataset("ogbn-products", 0)
    sampler, model = make_task("neighbor-sage", ds.layer_dims(3), seed=0)

    def run():
        return profile_training_step(ds, sampler, model, batch_size=512, steps=3)

    prof = benchmark.pedantic(run, rounds=1, iterations=1)
    save_result("profile_real_step", prof.summary())
    assert prof.seconds["gather"] > prof.seconds["dense"]
