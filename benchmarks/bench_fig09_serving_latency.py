"""Fig 9 (serving) — batching trades tail latency for throughput; the
BO autotuner searches the serving knobs against a latency SLO.

Two recordings over the online inference runtime (``repro.serve``):

``bench_fig9_batching_sweep``
    A (max_batch, max_wait_ms) sweep of the micro-batcher under one
    Zipf/Poisson workload.  Under light load a longer deadline *is* the
    latency (requests sit out their wait in deadline flushes); under
    overload the queue fills batches and the deadline stops mattering —
    the classic p99-vs-throughput trade-off surface.

``bench_fig9_serving_autotune``
    The existing :class:`~repro.core.autotuner.OnlineAutoTuner` driving
    a :class:`~repro.tuning.serving.ServingSpace` — ``(workers,
    max_batch, max_wait_ms, cache_entries, batch_mode, shard_policy,
    replicas, route_policy)`` —
    against the real inference engine with the SLO-aware objective.
    Pool-mode trials
    share one persistent :class:`~repro.exec.pool.WorkerPool`: a trial
    that shrinks ``workers`` parks the surplus worker instead of
    re-forking, so the whole search pays at most two launches.
"""

import numpy as np
import pytest

from repro.core.autotuner import OnlineAutoTuner
from repro.core.engine import MultiProcessEngine
from repro.experiments.reporting import render_table
from repro.exec.pool import WorkerPool
from repro.gnn.models import make_task
from repro.graph.datasets import load_dataset
from repro.graph.shm import SharedGraphStore
from repro.serve import InferenceEngine, ModelSnapshot, run_serving_workload
from repro.tuning.serving import ServingSpace, slo_objective


@pytest.fixture(scope="module")
def serving_setup():
    ds = load_dataset("ogbn-products", seed=0, scale_override=9)
    sampler, model = make_task("neighbor-sage", ds.layer_dims(2), seed=0, fanouts=[5, 5])
    trainer = MultiProcessEngine(
        ds, sampler, model, num_processes=1, global_batch_size=64,
        backend="inline", seed=0,
    )
    trainer.train(1)
    return ds, ModelSnapshot.from_engine(trainer)


def bench_fig9_batching_sweep(benchmark, save_result, serving_setup):
    ds, snapshot = serving_setup

    def measure(max_batch, max_wait_ms, rate):
        engine = InferenceEngine(snapshot, ds, mode="inline", cache_entries=2048)
        return run_serving_workload(
            engine, num_requests=160, rate_rps=rate, zipf_alpha=1.2,
            max_batch=max_batch, max_wait_ms=max_wait_ms, seed=0,
        )

    def run():
        grid = [(1, 0.0), (4, 2.0), (8, 2.0), (8, 20.0), (16, 20.0)]
        out = {}
        for load, rate in (("light", 150.0), ("overload", 20000.0)):
            out[load] = {cfg: measure(*cfg, rate) for cfg in grid}
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for load, reports in data.items():
        for (mb, mw), r in reports.items():
            rows.append(
                [load, mb, f"{mw:g}", f"{r.throughput_rps:.0f}",
                 f"{r.p50_ms:.2f}", f"{r.p99_ms:.2f}", f"{r.mean_batch:.2f}",
                 f"{r.cache.hit_rate:.2f}"]
            )
    save_result(
        "fig09_serving_latency_sweep",
        render_table(
            ["load", "max_batch", "max_wait ms", "req/s", "p50 ms", "p99 ms",
             "mean batch", "cache hit"],
            rows,
            title="Fig 9 (serving) — batching sweep: p99 latency vs throughput",
        ),
    )

    for reports in data.values():
        for r in reports.values():
            assert np.isfinite(r.p99_ms) and r.p50_ms <= r.p99_ms
            assert r.requests == 160
    light = data["light"]
    # no batching: every request served alone
    assert light[(1, 0.0)].mean_batch == 1.0
    # under light load the deadline IS the tail: a 20 ms wait floor
    # dominates the sub-ms service time
    assert light[(8, 20.0)].p99_ms > light[(1, 0.0)].p99_ms
    assert light[(8, 20.0)].p99_ms >= 20.0 * 0.9
    # under overload the queue fills real batches...
    over = data["overload"]
    assert over[(16, 20.0)].mean_batch > 2.0
    # ...and Zipf-hot repeats hit the cache
    assert over[(16, 20.0)].cache.hit_rate > 0.3


def bench_fig9_serving_autotune(benchmark, save_result, serving_setup):
    ds, snapshot = serving_setup

    def run():
        import multiprocessing as mp

        space = ServingSpace(
            workers=(1, 2), max_batches=(1, 8), max_waits_ms=(0.5, 8.0),
            cache_sizes=(0, 2048), batch_modes=("per_node", "frontier"),
            shard_policies=("chunk", "size_binned"),
        )
        pool = WorkerPool(mp.get_context(), timeout=60.0)
        model = snapshot.build_model()
        store = SharedGraphStore.from_dataset(ds)

        def objective(cfg):
            # replicas/route stay at their (1, round_robin) defaults here —
            # the horizontal axes are gated by bench_fig14_cluster_scaling
            (
                workers, max_batch, max_wait_ms, cache_entries, batch_mode,
                shard_policy, _replicas, _route_policy,
            ) = cfg
            engine = InferenceEngine(
                snapshot, ds, mode="pool", batch_mode=batch_mode,
                shard_policy=shard_policy,
                workers=int(workers), cache_entries=int(cache_entries),
                pool=pool, model=model, store=store,
            )
            engine.warm_up()
            report = run_serving_workload(
                engine, num_requests=64, rate_rps=20000.0, zipf_alpha=1.2,
                max_batch=int(max_batch), max_wait_ms=float(max_wait_ms), seed=0,
            )
            engine.close()
            return slo_objective(report, slo_ms=25.0)

        tuner = OnlineAutoTuner(space, num_searches=len(space), seed=0)
        try:
            result = tuner.tune(objective)
        finally:
            pool.shutdown()
            if not store.closed:
                store.unlink()
        return space, result, pool.launches

    space, result, launches = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [i, str(cfg), f"{score:.5f}"]
        for i, (cfg, score) in enumerate(result.history)
    ]
    rows.append(["best", str(result.best_config), f"{result.best_observed:.5f}"])
    save_result(
        "fig09_serving_autotune",
        render_table(
            ["trial", "(workers, batch, wait ms, cache, batch mode, shard, "
             "replicas, route)",
             "SLO objective"],
            rows,
            title="Fig 9 (serving) — BO autotune over the ServingSpace",
        ),
    )

    assert result.best_config in space
    assert len(result.history) == len(space)
    assert result.best_observed == pytest.approx(
        min(score for _, score in result.history)
    )
    # the search's worker flips were served by park/rebind, not re-forks:
    # at most one launch per distinct ascent past the forked count
    assert launches <= 2
