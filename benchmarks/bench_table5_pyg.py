"""Table V — epoch time of the configuration found (PyG).

Paper shape: same strategy ordering as Table IV, with PyG-specific
absolute times (its CPU kernels and neighbour sampler are far slower than
DGL's) and near-flat Neighbor-SAGE rows (per-iteration framework overhead
dominates, so even the oracle is close to the default).
"""

from repro.experiments.reporting import render_table
from repro.experiments.setups import DATASET_NAMES, ExperimentSetup
from repro.experiments.tables import table4_5_row

SETUPS = [
    ExperimentSetup(task, ds, plat, "pyg")
    for plat in ("icelake", "sapphire")
    for task in ("neighbor-sage", "shadow-gcn")
    for ds in DATASET_NAMES
]


def bench_table5(benchmark, save_result):
    def run():
        return [table4_5_row(s, sa_repeats=5) for s in SETUPS]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        [
            "setup",
            "Exhaustive",
            "Default",
            "(x)",
            "SimAnneal",
            "+/-",
            "(x)",
            "AutoTuner",
            "(x)",
        ],
        [
            [
                r["setup"],
                r["exhaustive"],
                r["default"],
                r["default_ratio"],
                r["sim_anneal_mean"],
                r["sim_anneal_std"],
                r["sim_anneal_ratio"],
                r["auto_tuner"],
                r["auto_tuner_ratio"],
            ]
            for r in rows
        ],
        title="Table V — epoch time (s) of the configuration found (PyG)",
    )
    save_result("table5_pyg", text)

    for r in rows:
        assert r["auto_tuner_ratio"] >= 0.85, r["setup"]
    # ShaDow defaults must be far worse than Neighbor defaults (paper:
    # 0.19-0.33x vs 0.76-1.0x)
    shadow = [r["default_ratio"] for r in rows if "shadow" in r["setup"]]
    neighbor = [r["default_ratio"] for r in rows if "neighbor" in r["setup"]]
    assert max(shadow) < min(neighbor)
