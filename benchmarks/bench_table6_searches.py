"""Table VI — number of searches of the different algorithms.

Paper: the exhaustive sweep covers the whole space (726 configurations on
the 112-core Ice Lake, 408 on the 64-core Sapphire Rapids); SA and the
auto-tuner use a 5-6% budget (35/45 and 20/25 searches).  Our natural
space enumeration yields 295/164 configurations (the paper's exact grid
rule is unpublished — see EXPERIMENTS.md); the explored *fraction* is
held at the paper's 5-6%.
"""

from repro.experiments.reporting import render_table
from repro.experiments.tables import table6_search_budgets


def bench_table6(benchmark, save_result):
    rows = benchmark.pedantic(table6_search_budgets, rounds=1, iterations=1)
    text = render_table(
        ["platform", "sampler-model", "space (ours)", "space (paper)", "budget (ours)", "budget (paper)", "fraction"],
        [
            [
                r["platform"],
                r["task"],
                r["space_size"],
                r["paper_space_size"],
                r["budget"],
                r["paper_budget"],
                r["fraction"],
            ]
            for r in rows
        ],
        title="Table VI — search-space sizes and budgets",
    )
    save_result("table6_searches", text)

    for r in rows:
        assert 0.04 <= r["fraction"] <= 0.07, "budget must stay at the paper's 5-6%"
    sizes = {r["platform"]: r["space_size"] for r in rows}
    assert sizes["Ice Lake 8380H"] > sizes["Sapphire Rapids 6430L"]
