"""Figure 2 — time-trace of one vs two GNN training processes.

Paper shape: a single process alternates memory-intensive and
compute-intensive phases, leaving memory bandwidth idle in the gaps; two
staggered processes overlap one process's communication with the other's
computation.
"""

from repro.experiments.figures import fig2_time_traces
from repro.platform.trace import render_ascii


def bench_fig2(benchmark, save_result):
    traces = benchmark.pedantic(lambda: fig2_time_traces(), rounds=1, iterations=1)
    single, dual = traces["single"], traces["dual"]
    text = (
        "Fig 2(A) — single process (memory idles between phases):\n"
        + render_ascii(single)
        + "\n\nFig 2(B) — two processes (phases overlap):\n"
        + render_ascii(dual)
        + f"\n\nmemory-busy fraction: single={single.busy_fraction('memory'):.2f} "
        + f"dual={dual.busy_fraction('memory'):.2f}"
    )
    save_result("fig02_timetrace", text)
    assert dual.busy_fraction("memory") > single.busy_fraction("memory")
