"""Figure 10 — overall 200-epoch training time, DGL vs ARGO.

Paper shape: ARGO speeds up DGL end-to-end (auto-tuning epochs included)
on every large dataset — up to 4.3x for ShaDow-GCN on Reddit — with
ShaDow gains exceeding Neighbor-SAGE gains, and only marginal gains (or a
slight slowdown) on the small Flickr dataset where the tuning overhead
cannot be amortised.
"""

from repro.experiments.figures import fig10_overall_training
from repro.experiments.reporting import render_table
from repro.experiments.setups import DATASET_NAMES, ExperimentSetup

SETUPS = [
    ExperimentSetup(task, ds, plat, "dgl")
    for ds in DATASET_NAMES
    for task in ("neighbor-sage", "shadow-gcn")
    for plat in ("icelake", "sapphire")
]


def bench_fig10(benchmark, save_result):
    def run():
        return [fig10_overall_training(s, epochs=200) for s in SETUPS]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["setup", "DGL default (s)", "ARGO (s)", "speedup", "best config"],
        [
            [r["setup"], r["default_total"], r["argo_total"], r["speedup"], str(r["best_config"])]
            for r in rows
        ],
        title="Fig 10 — overall training time, 200 epochs (DGL vs ARGO, tuning overhead included)",
    )
    save_result("fig10_overall_dgl", text)

    # ARGO helps everywhere on the large datasets
    large = [r["speedup"] for r in rows if "flickr" not in r["setup"]]
    assert min(large) > 1.0
    # ShaDow gains exceed Neighbor gains on ogbn-products (paper Fig. 10:
    # 2.80x/3.32x vs 1.62x/1.74x).  We restrict the comparison to products
    # because our synthetic Reddit over-penalises the Neighbor default
    # (see EXPERIMENTS.md deviations).
    products = {r["setup"]: r["speedup"] for r in rows if "ogbn-products" in r["setup"]}
    for plat in ("icelake", "sapphire"):
        assert (
            products[f"DGL-shadow-gcn-ogbn-products@{plat}"]
            > products[f"DGL-neighbor-sage-ogbn-products@{plat}"]
        )
