"""Table IV — epoch time of the configuration found (DGL).

Paper shape, per (platform, sampler-model, dataset) row:

* the library Default is sub-optimal everywhere (0.16x-0.94x of the
  exhaustive oracle; catastrophically bad for ShaDow);
* Simulated Annealing with the same budget reaches 0.54x-0.98x;
* the Auto-Tuner consistently reaches >= 0.90x of the oracle while
  exploring only ~5% of the space, and beats SA on almost every row.
"""

from repro.experiments.reporting import render_table
from repro.experiments.setups import DATASET_NAMES, ExperimentSetup
from repro.experiments.tables import table4_5_row

SETUPS = [
    ExperimentSetup(task, ds, plat, "dgl")
    for plat in ("icelake", "sapphire")
    for task in ("neighbor-sage", "shadow-gcn")
    for ds in DATASET_NAMES
]


def bench_table4(benchmark, save_result):
    def run():
        return [table4_5_row(s, sa_repeats=5) for s in SETUPS]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        [
            "setup",
            "Exhaustive",
            "Default",
            "(x)",
            "SimAnneal",
            "+/-",
            "(x)",
            "AutoTuner",
            "(x)",
        ],
        [
            [
                r["setup"],
                r["exhaustive"],
                r["default"],
                r["default_ratio"],
                r["sim_anneal_mean"],
                r["sim_anneal_std"],
                r["sim_anneal_ratio"],
                r["auto_tuner"],
                r["auto_tuner_ratio"],
            ]
            for r in rows
        ],
        title="Table IV — epoch time (s) of the configuration found (DGL)",
    )
    save_result("table4_dgl", text)

    for r in rows:
        assert r["default_ratio"] < 1.01, r["setup"]
        assert r["auto_tuner_ratio"] >= 0.85, r["setup"]
    # auto-tuner beats SA on most rows (paper: "almost every task")
    wins = sum(r["auto_tuner_ratio"] >= r["sim_anneal_ratio"] - 0.02 for r in rows)
    assert wins >= 0.7 * len(rows)
