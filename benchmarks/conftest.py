"""Benchmark harness plumbing.

Every ``bench_*`` file regenerates one table or figure of the paper.
Rendered outputs are written to ``benchmarks/results/`` and echoed to the
terminal section pytest prints for each benchmark.  The ``bench_``
naming keeps these out of the tier-1 suite, so collection needs explicit
overrides:

    pytest benchmarks/ -o python_files='bench_*.py' -o python_functions='bench_*'

which both times the regeneration kernels and leaves the reproduced
artefacts on disk (add ``--benchmark-disable`` to skip the timing
machinery and just run the assertions, as CI does for the fig1/fig8
files).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Write one experiment's rendered text to results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n[saved to {path}]")

    return _save
