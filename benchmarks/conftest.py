"""Benchmark harness plumbing.

Every ``bench_*`` file regenerates one table or figure of the paper.
Rendered outputs are written to ``benchmarks/results/`` and echoed to the
terminal section pytest prints for each benchmark, so

    pytest benchmarks/ --benchmark-only

both times the regeneration kernels and leaves the reproduced artefacts
on disk.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_result(results_dir):
    """Write one experiment's rendered text to results/<name>.txt."""

    def _save(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}\n[saved to {path}]")

    return _save
