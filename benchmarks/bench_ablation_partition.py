"""Section VII-A ablation — data-splitting strategy.

Paper: a METIS-style locality-aware split gives a more balanced workload
(performance gain) but its cost is prohibitive because the tuner changes
the process count during search, forcing re-partitioning each time.  We
compare the random split against our greedy-BFS METIS stand-in on edge
cut, balance, and partitioning cost across the process counts the tuner
visits.
"""

import time

import numpy as np

from repro.experiments.reporting import render_table
from repro.experiments.setups import _dataset
from repro.graph.partition import (
    greedy_bfs_partition,
    partition_balance,
    partition_edge_cut,
    random_node_partition,
)
from repro.utils.rng import derive_rng


def bench_partition_strategies(benchmark, save_result):
    ds = _dataset("ogbn-products", 0)
    nodes = np.arange(ds.num_nodes)

    def measure():
        rows = []
        for n in (2, 4, 8):
            t0 = time.perf_counter()
            rand = random_node_partition(nodes, n, rng=derive_rng(0))
            t_rand = time.perf_counter() - t0
            t0 = time.perf_counter()
            bfs = greedy_bfs_partition(ds.graph, nodes, n, rng=derive_rng(0))
            t_bfs = time.perf_counter() - t0
            rows.append(
                {
                    "n": n,
                    "cut_random": partition_edge_cut(ds.graph, rand),
                    "cut_bfs": partition_edge_cut(ds.graph, bfs),
                    "bal_random": partition_balance(rand),
                    "bal_bfs": partition_balance(bfs),
                    "t_random": t_rand,
                    "t_bfs": t_bfs,
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    text = render_table(
        ["#parts", "edge cut rand", "edge cut bfs", "balance rand", "balance bfs", "t rand (s)", "t bfs (s)"],
        [
            [r["n"], r["cut_random"], r["cut_bfs"], r["bal_random"], r["bal_bfs"], r["t_random"], r["t_bfs"]]
            for r in rows
        ],
        title="Sec VII-A — random vs locality-aware (METIS stand-in) data splitting",
    )
    save_result("ablation_partition", text)

    for r in rows:
        # locality-aware split cuts fewer edges (the paper's observed gain)
        assert r["cut_bfs"] < r["cut_random"]
        # ...but costs far more than a random shuffle (why ARGO defaults to
        # random: the tuner re-partitions whenever it changes n)
        assert r["t_bfs"] > 3 * r["t_random"]
