"""Section VI-D — auto-tuner overhead profile.

Paper: the online auto-tuner adds 1.5-3.8 s (Sapphire Rapids) / 7.7-9.6 s
(Ice Lake) of overhead and 10-20 MB of memory over a full training run —
under 0.5% of the total time on the large datasets.  Here we measure the
tuner's pure computation cost (GP fits + acquisition scans) directly.
"""

from repro.core.autotuner import OnlineAutoTuner
from repro.experiments.reporting import render_table
from repro.experiments.setups import ExperimentSetup, build_runtime


def bench_tuner_overhead(benchmark, save_result):
    setup = ExperimentSetup("neighbor-sage", "ogbn-products", "icelake", "dgl")
    rt, space = build_runtime(setup)

    def run_search():
        tuner = OnlineAutoTuner(space, space.paper_budget(), seed=0)
        return tuner.tune(rt.measure_epoch)

    res = benchmark(run_search)
    total_epochs = 200
    training_time = sum(t for _, t in res.history) + (total_epochs - res.num_searches) * rt.true_epoch_time(
        res.best_config
    )
    fraction = res.overhead_seconds / training_time
    text = render_table(
        ["metric", "value"],
        [
            ["searches", res.num_searches],
            ["tuner compute overhead (s)", res.overhead_seconds],
            ["surrogate memory (MB)", res.surrogate_memory_bytes / 1e6],
            ["200-epoch training time (s)", training_time],
            ["overhead fraction", fraction],
        ],
        title="Sec VI-D — auto-tuner overhead (Neighbor-SAGE, ogbn-products, Ice Lake)",
    )
    save_result("overhead_autotuner", text)
    assert fraction < 0.005, "tuner overhead must stay under 0.5% (paper Sec VI-D)"
    assert res.surrogate_memory_bytes < 20e6
