"""Fig 13 (observability) — span tracing is effectively free on the hot path.

The shared-memory span recorder (:mod:`repro.obs.trace`) claims a strict
overhead budget: with tracing enabled every serving phase takes two
extra ``perf_counter()`` reads plus four array stores per span — no
allocation, no IPC, no locks — and with tracing disabled the only cost
is a pre-checked ``recorder.enabled`` branch.

The bench drives the same overloaded drain workload as
``bench_fig10_frontier_batching`` (uniform traffic, cache off, arrivals
far faster than service: the drain makespan *is* the compute) with
tracing off and on, interleaved min-of-N so host noise cancels, and
gates the PR's claims:

* traced predictions are **bitwise identical** to untraced ones (the
  recorder never touches numerics);
* the traced drain makespan stays within **3%** of the untraced one;
* the run's exported Chrome trace document is well-formed and carries
  spans for every serving phase.
"""

import json

import numpy as np
import pytest

from repro.core.engine import MultiProcessEngine
from repro.experiments.reporting import render_table
from repro.gnn.models import make_task
from repro.graph.datasets import load_dataset
from repro.obs.export import chrome_trace_document, write_chrome_trace
from repro.serve import InferenceEngine, ModelSnapshot, run_serving_workload

ROUNDS = 8
NUM_REQUESTS = 256
OVERHEAD_BUDGET = 1.03


@pytest.fixture(scope="module")
def serving_setup():
    ds = load_dataset("ogbn-products", seed=0, scale_override=9)
    sampler, model = make_task("neighbor-sage", ds.layer_dims(2), seed=0, fanouts=[5, 5])
    trainer = MultiProcessEngine(
        ds, sampler, model, num_processes=1, global_batch_size=64,
        backend="inline", seed=0,
    )
    trainer.train(1)
    return ds, ModelSnapshot.from_engine(trainer)


def bench_fig13_trace_overhead(benchmark, save_result, serving_setup, tmp_path):
    ds, snapshot = serving_setup

    def measure(tracing: bool):
        engine = InferenceEngine(
            snapshot, ds, mode="inline", batch_mode="frontier",
            cache_entries=0, tracing=tracing,
        )
        try:
            report = run_serving_workload(
                engine, num_requests=NUM_REQUESTS, rate_rps=1e7, zipf_alpha=0.0,
                max_batch=8, max_wait_ms=50.0, seed=0,
            )
            doc = None
            if tracing:
                doc = chrome_trace_document(
                    engine.trace_arena.drain(),
                    engine.trace_names,
                    rank_labels=engine.trace_rank_labels(),
                    dropped=engine.trace_arena.dropped(),
                )
            return report, doc
        finally:
            engine.close()

    def run():
        # one discarded warm-up per side (first-touch page faults, BLAS
        # thread spin-up, import tails), then interleaved off/on rounds
        # so drift (thermal, cache, competing load) hits both sides
        # equally; min-of-N is the noise floor
        measure(False)
        measure(True)
        off_s, on_s = [], []
        doc = None
        for _ in range(ROUNDS):
            off_s.append(measure(False)[0].service_s)
            report, doc = measure(True)
            on_s.append(report.service_s)
        return {"off_s": off_s, "on_s": on_s, "doc": doc}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    best_off = min(data["off_s"])
    best_on = min(data["on_s"])
    ratio = best_on / max(best_off, 1e-12)
    doc = data["doc"]
    spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
    span_names = {e["name"] for e in spans}

    save_result(
        "fig13_trace_overhead",
        render_table(
            ["metric", "untraced", "traced"],
            [
                ["drain makespan ms (min of %d)" % ROUNDS,
                 f"{best_off * 1e3:.1f}", f"{best_on * 1e3:.1f}"],
                ["us per request",
                 f"{best_off / NUM_REQUESTS * 1e6:.0f}",
                 f"{best_on / NUM_REQUESTS * 1e6:.0f}"],
                ["overhead", "-", f"{(ratio - 1.0) * 100:+.2f}%"],
                ["spans recorded", "-", str(len(spans))],
            ],
            title="Fig 13 — span-tracing overhead on the serving drain",
        ),
    )

    # ------------------------------------------------------------------
    # tracing never touches numerics: bitwise-identical predictions
    nodes = ds.val_idx[:32]
    with InferenceEngine(
        snapshot, ds, batch_mode="frontier", cache_entries=0, tracing=False
    ) as plain:
        expected = plain.predict(nodes)
    with InferenceEngine(
        snapshot, ds, batch_mode="frontier", cache_entries=0, tracing=True
    ) as traced:
        np.testing.assert_array_equal(traced.predict(nodes), expected)

    # the exported document is valid Chrome trace-event JSON with the
    # serving phases on it, and survives a JSON round trip on disk
    path = tmp_path / "fig13_trace.json"
    write_chrome_trace(str(path), doc)
    loaded = json.loads(path.read_text())
    assert loaded["otherData"]["span_count"] == len(spans)
    assert {"sample", "merge", "forward", "cache", "predict"} <= span_names
    assert all(e["dur"] >= 0.0 for e in spans)

    # the PR's headline gate: tracing costs < 3% of the drain makespan
    assert ratio < OVERHEAD_BUDGET, (
        f"tracing overhead {100 * (ratio - 1):.1f}% exceeds the "
        f"{100 * (OVERHEAD_BUDGET - 1):.0f}% budget "
        f"(off={best_off * 1e3:.1f}ms on={best_on * 1e3:.1f}ms)"
    )
