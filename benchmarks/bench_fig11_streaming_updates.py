"""Fig 11 (streaming) — serving a live graph: scoped invalidation vs
full flush under an interleaved Poisson update / Zipf read workload.

One recording, three claims:

* **equal correctness** — after the same update stream, a scoped-
  invalidation engine and a full-flush engine answer delta-touching
  queries bit-identically, and both match a cold engine rebuilt on the
  materialised merged graph (the exactness oracle);
* **scoped wins on hit rate** — a delta only invalidates its reverse-
  reachable set, so the Zipf-hot cache survives an update storm that a
  full flush would wipe on every delta;
* **freshness SLO** — the report accounts freshness (stale-budget
  serving) alongside the latency SLO, so "fast but stale" is visible.
"""

import numpy as np

from repro.experiments.reporting import render_table
from repro.graph.datasets import load_dataset
from repro.graph.delta import materialize_dataset
from repro.gnn.models import make_task
from repro.core.engine import MultiProcessEngine
from repro.serve import (
    InferenceEngine,
    ModelSnapshot,
    make_update_stream,
    run_serving_workload,
)
from repro.utils.rng import derive_rng

SLO_MS = 25.0


def bench_fig11_streaming_updates(benchmark, save_result):
    ds = load_dataset("ogbn-products", seed=0, scale_override=10)
    sampler, model = make_task("neighbor-sage", ds.layer_dims(2), seed=0, fanouts=[5, 5])
    trainer = MultiProcessEngine(
        ds, sampler, model, num_processes=1, global_batch_size=64,
        backend="inline", seed=0,
    )
    trainer.train(1)
    snapshot = ModelSnapshot.from_engine(trainer)

    def run_mode(delta_invalidation, staleness_budget=0):
        engine = InferenceEngine(
            snapshot, ds, mode="inline", batch_mode="frontier",
            cache_entries=4096, delta_invalidation=delta_invalidation,
            staleness_budget=staleness_budget,
        )
        updates = make_update_stream(
            ds.num_nodes, num_updates=8, rate_ups=400.0, edges_per_update=2,
            rng=derive_rng(0, "fig11-updates"),
        )
        report = run_serving_workload(
            engine, num_requests=320, rate_rps=1500.0, zipf_alpha=1.5,
            max_batch=8, max_wait_ms=2.0, seed=0, updates=updates,
        )
        # exactness oracle: the live engine, after all deltas, answers
        # like a cold engine on the materialised merged graph
        probe = np.unique(
            np.concatenate([f.rows[:8] for f in engine._fragments])
        ).astype(np.int64)
        live = engine.predict(probe)
        merged = materialize_dataset(ds, engine._fragments)
        with InferenceEngine(
            snapshot, merged, mode="inline", batch_mode="frontier",
            cache_entries=0,
        ) as cold:
            oracle = cold.predict(probe)
        engine.close()
        return report, live, oracle

    def run():
        out = {}
        out["scoped"] = run_mode("scoped")
        out["flush"] = run_mode("flush")
        out["scoped+budget1"] = run_mode("scoped", staleness_budget=1)
        return out

    data = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for mode, (r, _, _) in data.items():
        rows.append([
            mode, r.updates_applied, f"{r.update_ms:.1f}",
            f"{r.cache.hit_rate:.3f}", r.invalidated, r.stale_served,
            f"{r.freshness:.3f}", f"{r.p99_ms:.2f}",
            f"{r.slo_attainment(SLO_MS):.3f}",
        ])
    save_result(
        "fig11_streaming_updates",
        render_table(
            ["invalidation", "deltas", "update ms", "cache hit", "dropped",
             "stale served", "freshness", "p99 ms", f"SLO<={SLO_MS:g}ms"],
            rows,
            title="Fig 11 (streaming) — live graph updates: scoped vs flush",
        ),
    )

    scoped, flush, budgeted = data["scoped"], data["flush"], data["scoped+budget1"]
    # equal correctness: both modes (and the budget run's post-stream
    # state) match the cold merged-graph oracle bit for bit
    for _, live, oracle in data.values():
        np.testing.assert_array_equal(live, oracle)
    np.testing.assert_array_equal(scoped[1], flush[1])
    # every delta landed in every run
    assert all(r.updates_applied == 8 for r, _, _ in data.values())
    assert all(r.graph_generation == 8 for r, _, _ in data.values())
    # scoped invalidation beats the full flush on cache hit rate
    assert scoped[0].cache.hit_rate > flush[0].cache.hit_rate
    # scoped drops strictly fewer entries than flush-everything
    assert scoped[0].invalidated < flush[0].invalidated
    # budget 0 never serves stale; budget 1 may, and accounts for it
    assert scoped[0].stale_served == 0 and scoped[0].freshness == 1.0
    assert budgeted[0].freshness <= 1.0
