"""Section VII-B ablation — search-space pruning vs BayesOpt, 2-D vs 3-D.

Paper discussion: pruning the space strategically "has the potential to
produce results comparable to our auto-tuner" on the 2-D landscape, but
"becomes increasingly challenging as the number of dimensions increases".
We test exactly that: on the canonical (2-D per process count) space and
on the full 3-D space (training cores free, ~30x more configurations),
compare BayesOpt and the successive-halving pruner at the same budget.
"""

import numpy as np

from repro.core.autotuner import OnlineAutoTuner
from repro.experiments.reporting import render_table
from repro.experiments.setups import ExperimentSetup, build_runtime
from repro.tuning.pruning import PruningSearch
from repro.tuning.space import ConfigSpace

SEEDS = range(5)


def bench_pruning_vs_bayesopt(benchmark, save_result):
    setup = ExperimentSetup("neighbor-sage", "ogbn-products", "icelake", "dgl")
    rt, flat = build_runtime(setup)
    full = ConfigSpace.full3d(112)

    def quality(space, budget):
        optimum, _ = rt.argo_best_epoch_time(112, space)
        bo_vals, prune_vals = [], []
        for seed in SEEDS:
            tuner = OnlineAutoTuner(space, budget, seed=seed)
            res = tuner.tune(rt.measure_epoch)
            bo_vals.append(optimum / rt.true_epoch_time(res.best_config))
            pr = PruningSearch().run(rt.measure_epoch, space, budget, seed=seed)
            prune_vals.append(optimum / rt.true_epoch_time(pr.best_config))
        return float(np.mean(bo_vals)), float(np.mean(prune_vals))

    def run():
        budget = flat.paper_budget()  # same absolute budget on both spaces
        return {
            "2d": (len(flat), budget, *quality(flat, budget)),
            "3d": (len(full), budget, *quality(full, budget)),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    text = render_table(
        ["space", "size", "budget", "BayesOpt quality", "Pruning quality"],
        [[k, v[0], v[1], v[2], v[3]] for k, v in results.items()],
        title="Sec VII-B — pruning vs BayesOpt as dimensionality grows",
    )
    save_result("ablation_pruning", text)

    _, _, bo2, pr2 = results["2d"]
    _, _, bo3, pr3 = results["3d"]
    # 2-D: pruning is comparable (the paper's conjecture)
    assert pr2 > 0.8
    # 3-D: BayesOpt holds up; pruning degrades relative to its 2-D self or
    # stays below BayesOpt (the paper's scaling argument)
    assert bo3 >= 0.85
    assert bo3 >= pr3 - 0.05
